package apps

import (
	"fmt"
	"math"
	"time"

	"pie/api"
	"pie/inferlet"
	"pie/internal/grammar"
	"pie/support"
)

// Custom generation processes (R2): these programs reshape the
// predict-then-sample loop itself — grammar masks, multi-candidate beams,
// distribution biasing, validate-and-retry, and multi-token-per-step
// speculative/Jacobi schedules — all per-request, with no engine changes.

// EBNFParams configures EBNFDecoding.
type EBNFParams struct {
	Common
	Grammar   string `json:"grammar"` // EBNF source; default JSON
	Start     string `json:"start"`
	Prompt    string `json:"prompt"`
	MaxTokens int    `json:"max_tokens"`
	// MinTokens keeps generating past early acceptable sentences (e.g. a
	// bare number is complete JSON); default 3/4 of MaxTokens, so
	// cross-system comparisons generate comparable lengths.
	MinTokens int `json:"min_tokens"`
	// MaskCostUs charges the per-step token-mask computation to virtual
	// time (the in-sandbox work a Wasm-compiled grammar library performs;
	// default 150µs, roughly llguidance's per-step cost).
	MaskCostUs int `json:"mask_cost_us"`
}

// EBNFDecoding constrains sampling with a compiled EBNF grammar: at every
// step only tokens whose bytes keep the parse alive are eligible, so even
// an untrained model emits syntactically valid output (Table 2: 225 LoC,
// 2 MB — the paper embeds the llguidance library; we embed
// internal/grammar).
func EBNFDecoding() inferlet.Program {
	return inferlet.Program{
		Name:       "ebnf",
		BinarySize: 2 << 20,
		Manifest:   manifest(api.TraitTokenize, api.TraitOutputText),
		Run: func(s inferlet.Session) error {
			var p EBNFParams
			if err := decodeParams(s, &p); err != nil {
				return err
			}
			if p.Grammar == "" {
				p.Grammar = grammar.JSONGrammar
				p.Start = "json"
			}
			if p.MaxTokens <= 0 {
				p.MaxTokens = 48
			}
			if p.Prompt == "" {
				p.Prompt = "Respond with JSON: "
			}
			g, err := grammar.Parse(p.Grammar)
			if err != nil {
				return err
			}
			machine, err := g.Compile(p.Start)
			if err != nil {
				return err
			}
			m, err := modelInfo(s, p.Model)
			if err != nil {
				return err
			}
			ctx, err := support.NewContext(s, m)
			if err != nil {
				return err
			}
			defer ctx.Drop()
			if err := ctx.Fill(p.Prompt); err != nil {
				return err
			}
			vocab, err := ctx.Vocabs()
			if err != nil {
				return err
			}

			if p.MaskCostUs == 0 {
				p.MaskCostUs = 150
			}
			if p.MinTokens <= 0 {
				p.MinTokens = p.MaxTokens * 3 / 4
			}
			var out []int
			hardLimit := p.MaxTokens + 16 // soft landing: close open structure
			for len(out) < hardLimit {
				if machine.CanAccept() && !machine.CanContinue() {
					break
				}
				s.Sleep(time.Duration(p.MaskCostUs) * time.Microsecond)
				allowed := machine.AllowedSet(vocab)
				if len(allowed) == 0 {
					break // only acceptance remains
				}
				dist, err := ctx.NextDist()
				if err != nil {
					return err
				}
				sampler := &support.MaskedSampler{
					Allowed: func(tok int) bool { return allowed[tok] },
					Base:    support.Greedy{},
				}
				tok := sampler.Next(dist)
				if !allowed[tok] {
					// The whole truncated distribution was masked out;
					// fall back to any viable token (grammar-first).
					for id := range allowed {
						tok = id
						break
					}
				}
				if len(out) >= p.MaxTokens-2 || (len(out) >= p.MinTokens && !allowed[tok]) {
					// Budget nearly spent: steer toward completion by
					// preferring an allowed token that accepts outright.
					for id := range allowed {
						probe := machine.Clone()
						if probe.AdvanceString(string(vocab[id])) && probe.CanAccept() {
							tok = id
							break
						}
					}
				}
				if !machine.AdvanceString(string(vocab[tok])) {
					return fmt.Errorf("apps: grammar rejected its own allowed token %d", tok)
				}
				out = append(out, tok)
				s.ReportOutputTokens(1)
				if err := ctx.Append(tok); err != nil {
					return err
				}
				if machine.CanAccept() && (len(out) >= p.MinTokens || !machine.CanContinue()) {
					break
				}
			}
			text, err := ctx.DecodeText(out)
			if err != nil {
				return err
			}
			s.Send(text)
			return ctx.Sync()
		},
	}
}

// BeamParams configures BeamSearch.
type BeamParams struct {
	Common
	Prompt string `json:"prompt"`
	Width  int    `json:"width"`
	Steps  int    `json:"steps"`
}

// BeamSearch keeps the `width` highest-likelihood continuations alive,
// duplicating KV pages when a beam spawns several survivors and freeing
// pruned beams immediately — the feature vLLM nearly dropped for
// complexity, here 100 lines of application code (Table 2: 98 LoC).
func BeamSearch() inferlet.Program {
	return inferlet.Program{
		Name:       "beam",
		BinarySize: 142 << 10,
		Manifest:   manifest(api.TraitTokenize, api.TraitOutputText),
		Run: func(s inferlet.Session) error {
			var p BeamParams
			if err := decodeParams(s, &p); err != nil {
				return err
			}
			if p.Prompt == "" {
				p.Prompt = "Once upon a time "
			}
			if p.Width <= 0 {
				p.Width = 3
			}
			if p.Steps <= 0 {
				p.Steps = 12
			}
			m, err := modelInfo(s, p.Model)
			if err != nil {
				return err
			}
			root, err := support.NewContext(s, m)
			if err != nil {
				return err
			}
			if err := root.Fill(p.Prompt); err != nil {
				return err
			}
			type beam struct {
				ctx   *support.Context
				score float64
				toks  []int
			}
			first, err := root.Fork(1)
			if err != nil {
				return err
			}
			beams := []beam{{ctx: first[0]}}

			for step := 0; step < p.Steps; step++ {
				type cand struct {
					from  int
					tok   int
					score float64
				}
				var cands []cand
				for i, b := range beams {
					dist, err := b.ctx.NextDist()
					if err != nil {
						return err
					}
					for j := 0; j < p.Width && j < len(dist.Tokens); j++ {
						lp := math.Log(float64(dist.Probs[j]) + 1e-9)
						cands = append(cands, cand{from: i, tok: dist.Tokens[j], score: b.score + lp})
					}
				}
				// Top `width` candidates overall (insertion sort: tiny n).
				for i := 1; i < len(cands); i++ {
					for j := i; j > 0 && cands[j].score > cands[j-1].score; j-- {
						cands[j], cands[j-1] = cands[j-1], cands[j]
					}
				}
				if len(cands) > p.Width {
					cands = cands[:p.Width]
				}
				// How many survivors does each parent feed?
				children := map[int][]cand{}
				for _, c := range cands {
					children[c.from] = append(children[c.from], c)
				}
				var next []beam
				for i, b := range beams {
					kids := children[i]
					if len(kids) == 0 {
						if err := b.ctx.Drop(); err != nil { // pruned
							return err
						}
						continue
					}
					// First survivor continues in place; extra survivors
					// fork (KV page duplication).
					extra, err := b.ctx.Fork(len(kids) - 1)
					if err != nil {
						return err
					}
					ctxs := append([]*support.Context{b.ctx}, extra...)
					for k, c := range kids {
						if err := ctxs[k].Append(c.tok); err != nil {
							return err
						}
						s.ReportOutputTokens(0) // counted below once per step
						next = append(next, beam{
							ctx:   ctxs[k],
							score: c.score,
							toks:  append(append([]int(nil), b.toks...), c.tok),
						})
					}
				}
				beams = next
				s.ReportOutputTokens(1) // one output token per step survives
			}
			best := beams[0]
			for _, b := range beams[1:] {
				if b.score > best.score {
					best = b
				}
			}
			text, err := best.ctx.DecodeText(best.toks)
			if err != nil {
				return err
			}
			s.Send(fmt.Sprintf("beam[%.3f]:%s", best.score, text))
			for _, b := range beams {
				if err := b.ctx.Sync(); err != nil {
					return err
				}
				if err := b.ctx.Drop(); err != nil {
					return err
				}
			}
			return root.Drop()
		},
	}
}

// WatermarkParams configures Watermarking.
type WatermarkParams struct {
	Common
	Prompt    string  `json:"prompt"`
	MaxTokens int     `json:"max_tokens"`
	Gamma     float64 `json:"gamma"` // greenlist fraction
	Delta     float64 `json:"delta"` // logit boost
	Key       uint64  `json:"key"`
}

// Watermarking biases sampling toward a key-dependent greenlist
// (Kirchenbauer et al.): dynamic control over the output distribution
// that monolithic loops have no hook for (Table 2: 43 LoC).
func Watermarking() inferlet.Program {
	return inferlet.Program{
		Name:       "watermarking",
		BinarySize: 130 << 10,
		Manifest:   manifest(api.TraitTokenize, api.TraitOutputText),
		Run: func(s inferlet.Session) error {
			var p WatermarkParams
			if err := decodeParams(s, &p); err != nil {
				return err
			}
			if p.Prompt == "" {
				p.Prompt = "The quick brown "
			}
			if p.MaxTokens <= 0 {
				p.MaxTokens = 40
			}
			if p.Gamma <= 0 {
				p.Gamma = 0.5
			}
			if p.Delta == 0 {
				p.Delta = 4
			}
			if p.Key == 0 {
				p.Key = 0xC0FFEE
			}
			m, err := modelInfo(s, p.Model)
			if err != nil {
				return err
			}
			ctx, err := support.NewContext(s, m)
			if err != nil {
				return err
			}
			defer ctx.Drop()
			if err := ctx.Fill(p.Prompt); err != nil {
				return err
			}
			// The greenlist reseeds from the previous token every step, so
			// the bias closure reads prev captured by reference.
			prev := ctx.Tokens[len(ctx.Tokens)-1]
			sampler := &support.BiasedSampler{
				Base: support.Greedy{},
				Bias: func(tok int) float32 {
					if InGreenlist(prev, tok, p.Key, p.Gamma) {
						return float32(p.Delta)
					}
					return 0
				},
			}
			res, err := ctx.Generate(support.GenOpts{
				MaxTokens: p.MaxTokens,
				Sampler:   sampler,
				OnToken:   func(tok int) { prev = tok },
			})
			if err != nil {
				return err
			}
			z := WatermarkZScore(append([]int{ctx.Tokens[len(ctx.Tokens)-len(res.Tokens)-1]}, res.Tokens...), p.Key, p.Gamma)
			s.Send(fmt.Sprintf("z=%.2f %s", z, res.Text))
			return ctx.Sync()
		},
	}
}

// InGreenlist reports whether tok is in the greenlist seeded by the
// previous token and key.
func InGreenlist(prev, tok int, key uint64, gamma float64) bool {
	h := (uint64(prev)*0x9E3779B97F4A7C15 + key) * 0xD6E8FEB86659FD93
	h ^= uint64(tok) * 0xCA5A826395121157
	h ^= h >> 33
	h *= 0xFF51AFD7ED558CCD
	h ^= h >> 29
	return float64(h%10000)/10000 < gamma
}

// WatermarkZScore measures greenlist over-representation in a token
// stream: the detector for Watermarking's output.
func WatermarkZScore(tokens []int, key uint64, gamma float64) float64 {
	if len(tokens) < 2 {
		return 0
	}
	green := 0
	n := 0
	for i := 1; i < len(tokens); i++ {
		if InGreenlist(tokens[i-1], tokens[i], key, gamma) {
			green++
		}
		n++
	}
	mean := gamma * float64(n)
	sd := math.Sqrt(gamma * (1 - gamma) * float64(n))
	if sd == 0 {
		return 0
	}
	return (float64(green) - mean) / sd
}
