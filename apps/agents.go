package apps

import (
	"fmt"
	"strings"

	"pie/api"
	"pie/inferlet"
	"pie/support"
)

// Agentic workflows (§7.1): the whole agent loop — thinking, tool calls,
// observations — lives inside one inferlet, so external interactions cost
// no client round trips and the KV cache survives across them. The
// baselines in internal/baseline replicate the same workloads with
// client-side orchestration for the Fig. 6/7 comparisons.

// AgentParams configures the ReACT/CodeACT agents.
type AgentParams struct {
	Common
	Task        string `json:"task"`
	Steps       int    `json:"steps"` // external interactions (paper: 8)
	ThinkTokens int    `json:"think_tokens"`
	ObsTokens   int    `json:"obs_tokens"`
	FinalTokens int    `json:"final_tokens"`
	ToolURL     string `json:"tool_url"`
}

func applyAgentDefaults(p *AgentParams, defaultTool string) {
	if p.Task == "" {
		p.Task = "Find the weather in the capital of France and summarize. "
	}
	if p.Steps <= 0 {
		p.Steps = 8
	}
	if p.ThinkTokens <= 0 {
		p.ThinkTokens = 24
	}
	if p.ObsTokens <= 0 {
		p.ObsTokens = 16
	}
	if p.FinalTokens <= 0 {
		p.FinalTokens = 24
	}
	if p.ToolURL == "" {
		p.ToolURL = defaultTool
	}
}

// AgentReACT interleaves Thought/Action generation with web-API calls
// (Table 2: 60 LoC, 309 KB).
func AgentReACT() inferlet.Program {
	return agentProgram("agent_react", 309<<10, "http://search.api/q")
}

// AgentCodeACT generates code actions executed by a sandbox service; its
// binary embeds a JS runtime, hence the 6.7 MB artifact (Table 2: 62 LoC).
func AgentCodeACT() inferlet.Program {
	return agentProgram("agent_codeact", 6700<<10, "http://code.exec/run")
}

func agentProgram(name string, binSize int, defaultTool string) inferlet.Program {
	return inferlet.Program{
		Name:       name,
		BinarySize: binSize,
		Manifest:   manifest(api.TraitTokenize, api.TraitOutputText),
		Run: func(s inferlet.Session) error {
			var p AgentParams
			if err := decodeParams(s, &p); err != nil {
				return err
			}
			applyAgentDefaults(&p, defaultTool)
			m, err := modelInfo(s, p.Model)
			if err != nil {
				return err
			}
			ctx, err := support.NewContext(s, m)
			if err != nil {
				return err
			}
			defer ctx.Drop()
			if err := ctx.Fill(p.Task); err != nil {
				return err
			}
			for step := 0; step < p.Steps; step++ {
				// Think: emit the next Thought/Action.
				act, err := ctx.Generate(support.GenOpts{MaxTokens: p.ThinkTokens})
				if err != nil {
					return err
				}
				// Act: the tool call happens inside the inferlet — no
				// client round trip, KV stays resident (R3).
				resp, err := s.HTTPGet(fmt.Sprintf("%s?step=%d&act=%x", p.ToolURL, step, hash64(act.Text))).Get()
				if err != nil {
					return err
				}
				// Observe: splice the observation into the live context.
				obs := fmt.Sprintf(" observation %d: %s ", step, resp)
				if err := fillPadded(ctx, obs, p.ObsTokens); err != nil {
					return err
				}
			}
			final, err := ctx.Generate(support.GenOpts{MaxTokens: p.FinalTokens})
			if err != nil {
				return err
			}
			s.Send(name + ":" + final.Text)
			return ctx.Sync()
		},
	}
}

// fillPadded tokenizes text and clamps/pads it to exactly n tokens so
// workload token budgets are deterministic across modes.
func fillPadded(ctx *support.Context, text string, n int) error {
	toks, err := ctx.Encode(text)
	if err != nil {
		return err
	}
	if len(toks) > n {
		toks = toks[:n]
	}
	for len(toks) < n {
		toks = append(toks, 0)
	}
	return ctx.FillTokens(toks)
}

// SwarmParams configures AgentSwarm.
type SwarmParams struct {
	Common
	Task         string `json:"task"`
	Workers      int    `json:"workers"`
	IOsPerWorker int    `json:"ios_per_worker"` // paper total: 32 per agent
	ThinkTokens  int    `json:"think_tokens"`
	Topic        string `json:"topic"`
}

// AgentSwarm coordinates sub-agent inferlets: the coordinator spawns
// workers, workers run their own generation+IO loops and publish results
// on a broadcast topic, and the coordinator synthesizes the answers
// (Table 2: 95 LoC; GPTSwarm-style).
func AgentSwarm() inferlet.Program {
	return inferlet.Program{
		Name:       "agent_swarm",
		BinarySize: 135 << 10,
		Manifest:   manifest(api.TraitTokenize, api.TraitOutputText),
		Run: func(s inferlet.Session) error {
			var p SwarmParams
			if err := decodeParams(s, &p); err != nil {
				return err
			}
			if p.Task == "" {
				p.Task = "Research the topic from several angles. "
			}
			if p.Workers <= 0 {
				p.Workers = 4
			}
			if p.IOsPerWorker <= 0 {
				p.IOsPerWorker = 8 // 4 workers × 8 = the paper's 32 IOs
			}
			if p.ThinkTokens <= 0 {
				p.ThinkTokens = 16
			}
			if p.Topic == "" {
				p.Topic = fmt.Sprintf("swarm-%s", s.InstanceID())
			}
			sub := s.Subscribe(p.Topic)

			for w := 0; w < p.Workers; w++ {
				wp := fmt.Sprintf(`{"model":%q,"seed":%d,"task":"angle %d: %s","ios":%d,"think_tokens":%d,"topic":%q}`,
					p.Model, p.Seed+uint64(w), w, p.Task, p.IOsPerWorker, p.ThinkTokens, p.Topic)
				if _, err := s.Spawn("agent_swarm_worker", []string{wp}); err != nil {
					return err
				}
			}
			var parts []string
			for w := 0; w < p.Workers; w++ {
				msg, err := sub.Recv().Get()
				if err != nil {
					return err
				}
				parts = append(parts, msg)
			}

			// Synthesize.
			m, err := modelInfo(s, p.Model)
			if err != nil {
				return err
			}
			ctx, err := support.NewContext(s, m)
			if err != nil {
				return err
			}
			defer ctx.Drop()
			if err := ctx.Fill(p.Task + strings.Join(parts, " ")); err != nil {
				return err
			}
			res, err := ctx.Generate(support.GenOpts{MaxTokens: p.ThinkTokens * 2})
			if err != nil {
				return err
			}
			s.Send("swarm:" + res.Text)
			return ctx.Sync()
		},
	}
}

// swarmWorkerParams configures one swarm worker.
type swarmWorkerParams struct {
	Common
	Task        string `json:"task"`
	IOs         int    `json:"ios"`
	ThinkTokens int    `json:"think_tokens"`
	Topic       string `json:"topic"`
}

// AgentSwarmWorker is the sub-agent of AgentSwarm.
func AgentSwarmWorker() inferlet.Program {
	return inferlet.Program{
		Name:       "agent_swarm_worker",
		BinarySize: 135 << 10,
		Manifest:   manifest(api.TraitTokenize, api.TraitOutputText),
		Run: func(s inferlet.Session) error {
			var p swarmWorkerParams
			if err := decodeParams(s, &p); err != nil {
				return err
			}
			if p.IOs <= 0 {
				p.IOs = 8
			}
			if p.ThinkTokens <= 0 {
				p.ThinkTokens = 16
			}
			m, err := modelInfo(s, p.Model)
			if err != nil {
				return err
			}
			ctx, err := support.NewContext(s, m)
			if err != nil {
				return err
			}
			defer ctx.Drop()
			if err := ctx.Fill(p.Task); err != nil {
				return err
			}
			for i := 0; i < p.IOs; i++ {
				if _, err := ctx.Generate(support.GenOpts{MaxTokens: p.ThinkTokens}); err != nil {
					return err
				}
				resp, err := s.HTTPGet(fmt.Sprintf("http://search.api/q?worker&io=%d", i)).Get()
				if err != nil {
					return err
				}
				if err := fillPadded(ctx, resp, 8); err != nil {
					return err
				}
			}
			res, err := ctx.Generate(support.GenOpts{MaxTokens: p.ThinkTokens})
			if err != nil {
				return err
			}
			if err := ctx.Sync(); err != nil {
				return err
			}
			s.Broadcast(p.Topic, res.Text)
			return nil
		},
	}
}

// FnCallParams configures the Fig. 7 function-calling agent.
type FnCallParams struct {
	Common
	NumAPIs     int `json:"num_apis"`    // API specs in the system prompt
	SpecTokens  int `json:"spec_tokens"` // tokens per spec (page-aligned)
	HotAPIs     int `json:"hot_apis"`    // frequently-used specs (cacheable)
	Calls       int `json:"calls"`       // function calls to make
	ThinkTokens int `json:"think_tokens"`

	// The three stackable optimizations of §7.2:
	OptCache bool `json:"opt_cache"` // #1 export/import hot spec KV
	OptAsync bool `json:"opt_async"` // #2 fire-and-forget concurrent calls
	OptMask  bool `json:"opt_mask"`  // #3 drop single-use spec KV
}

// FunctionCallAgent is the workload behind Fig. 7: a system prompt of API
// specifications followed by a loop of think→call steps. Each optimization
// exploits one workload property the serving system cannot know:
// #1 hot specs are shared across agents (export/import beats re-prefill),
// #2 most calls are fire-and-forget (no need to await responses),
// #3 cold specs are used once (mask + free their KV after use).
func FunctionCallAgent() inferlet.Program {
	return inferlet.Program{
		Name:       "fncall_agent",
		BinarySize: 140 << 10,
		Manifest:   manifest(api.TraitTokenize, api.TraitOutputText),
		Run: func(s inferlet.Session) error {
			var p FnCallParams
			if err := decodeParams(s, &p); err != nil {
				return err
			}
			if p.NumAPIs <= 0 {
				p.NumAPIs = 8
			}
			if p.HotAPIs <= 0 {
				p.HotAPIs = 2
			}
			if p.Calls <= 0 {
				p.Calls = 8
			}
			if p.ThinkTokens <= 0 {
				p.ThinkTokens = 12
			}
			m, err := modelInfo(s, p.Model)
			if err != nil {
				return err
			}
			if p.SpecTokens <= 0 {
				p.SpecTokens = 4 * m.PageSize
			}
			p.SpecTokens = (p.SpecTokens + m.PageSize - 1) / m.PageSize * m.PageSize

			ctx, err := support.NewContext(s, m)
			if err != nil {
				return err
			}
			defer ctx.Drop()

			// System prompt: hot specs first (as pinned shared KV when
			// cached), then per-agent cold specs.
			var pinned []api.KvPage
			basePos := 0
			if p.OptCache {
				alloc := ctx.Alloc()
				for h := 0; h < p.HotAPIs; h++ {
					key := fmt.Sprintf("apispec:%d:%d", h, p.SpecTokens)
					if !alloc.HasExport(key) {
						if err := cacheModule(ctx.Q, m,
							Module{Name: key, Text: specText(h)},
							h*p.SpecTokens, p.SpecTokens, key); err != nil {
							return err
						}
					}
					pages, err := alloc.Import(key)
					if err != nil {
						return err
					}
					pinned = append(pinned, pages...)
					basePos += p.SpecTokens
				}
				if _, err := support.ComposeContext(ctx, pinned, basePos); err != nil {
					return err
				}
			}
			coldStart := p.HotAPIs
			if !p.OptCache {
				coldStart = 0
			}
			specRange := make(map[int][2]int) // spec -> [fromSlot, toSlot)
			for a := coldStart; a < p.NumAPIs; a++ {
				from := ctx.Slots()
				if err := fillPadded(ctx, specText(a), p.SpecTokens); err != nil {
					return err
				}
				specRange[a] = [2]int{from, ctx.Slots()}
			}
			if err := ctx.Fill(" user query: run the workflow "); err != nil {
				return err
			}

			// Call loop.
			var lastCall api.Future[string]
			for call := 0; call < p.Calls; call++ {
				if _, err := ctx.Generate(support.GenOpts{MaxTokens: p.ThinkTokens}); err != nil {
					return err
				}
				target := call % p.NumAPIs
				fut := s.HTTPGet(fmt.Sprintf("http://fn.api/%d?call=%d", target, call))
				if p.OptAsync {
					lastCall = fut // fire-and-forget; keep only the last
				} else {
					resp, err := fut.Get()
					if err != nil {
						return err
					}
					if err := fillPadded(ctx, " result: "+resp, 8); err != nil {
						return err
					}
				}
				// A cold spec was consumed: mask and free its KV.
				if p.OptMask {
					if r, used := specRange[target]; used && target >= coldStart {
						if err := ctx.MaskRange(r[0], r[1], true); err != nil {
							return err
						}
						if _, err := ctx.ReleaseMaskedPages([][2]int{r}); err != nil {
							return err
						}
						delete(specRange, target)
					}
				}
			}
			if p.OptAsync && lastCall != nil {
				// Only the final call's completion gates the answer.
				if _, err := lastCall.Get(); err != nil {
					return err
				}
			}
			final, err := ctx.Generate(support.GenOpts{MaxTokens: p.ThinkTokens})
			if err != nil {
				return err
			}
			s.Send("fncall:" + final.Text)
			return ctx.Sync()
		},
	}
}

// specText synthesizes an API specification document.
func specText(i int) string {
	return fmt.Sprintf("api %d spec: function call with args and return value documentation for tool number %d. ", i, i)
}
