package pie_test

// One benchmark per table and figure of the paper's evaluation (§7).
// Each drives the corresponding internal/eval experiment on the virtual
// clock and reports the paper's headline quantities as custom benchmark
// metrics (simulated milliseconds / throughput — wall-clock ns/op measures
// only how fast the simulation replays). `go test -bench .` regenerates
// every result; cmd/pie-bench prints the full tables.

import (
	"testing"
	"time"

	"pie/internal/eval"
	"pie/internal/sim"
)

var benchOpts = eval.Options{Seed: 42, Quick: true}

func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

// BenchmarkFigure6Agents reports agent latency/throughput for Pie vs the
// baselines (paper: up to −15% latency, +30% throughput on ReACT).
func BenchmarkFigure6Agents(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := eval.Figure6(benchOpts)
		for _, sys := range []string{"pie", "vllm", "sglang"} {
			row, _ := r.Get("react", sys)
			b.ReportMetric(row.Latency.Seconds(), "react-"+sys+"-sec")
			b.ReportMetric(row.Throughput, "react-"+sys+"-agents/s")
		}
	}
}

// BenchmarkFigure7Optimizations reports the stacked-optimization sweep
// (paper: 3.5× over vLLM at 128 agents).
func BenchmarkFigure7Optimizations(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := eval.Figure7(benchOpts)
		base := r.Series[0] // vllm
		full := r.Series[len(r.Series)-1]
		last := len(base.Throughput) - 1
		b.ReportMetric(base.Throughput[last], "vllm-agents/s")
		b.ReportMetric(full.Throughput[last], "pie-full-agents/s")
		b.ReportMetric(full.Throughput[last]/base.Throughput[last], "speedup-x")
	}
}

// BenchmarkFigure8Techniques reports the technique grid's headline cells
// (paper: near parity on text completion, 1.5×/30× vs StreamingLLM).
func BenchmarkFigure8Techniques(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := eval.Figure8(benchOpts)
		pieTC, _ := r.Get("textcomp", "pie")
		vllmTC, _ := r.Get("textcomp", "vllm")
		b.ReportMetric(ms(pieTC.Latency), "textcomp-pie-ms")
		b.ReportMetric(ms(vllmTC.Latency), "textcomp-vllm-ms")
		pieAS, _ := r.Get("attnsink", "pie")
		sllm, _ := r.Get("attnsink", "streamingllm")
		b.ReportMetric(pieAS.Throughput/sllm.Throughput, "attnsink-speedup-x")
	}
}

// BenchmarkFigure9Launch reports launch latency (paper: warm 10–50 ms,
// cold 35–81 ms).
func BenchmarkFigure9Launch(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := eval.Figure9(benchOpts)
		first := r.Points[0]
		last := r.Points[len(r.Points)-1]
		b.ReportMetric(ms(first.Warm), "warm-1-ms")
		b.ReportMetric(ms(first.Cold), "cold-1-ms")
		b.ReportMetric(ms(last.Warm), "warm-max-ms")
		b.ReportMetric(ms(last.Cold), "cold-max-ms")
	}
}

// BenchmarkFigure10APIOverhead reports per-call overhead by layer (paper:
// control <30 µs, inference 10–300 µs).
func BenchmarkFigure10APIOverhead(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := eval.Figure10(benchOpts)
		first := r.Points[0]
		last := r.Points[len(r.Points)-1]
		b.ReportMetric(float64(first.ControlLayer)/1e3, "control-1-us")
		b.ReportMetric(float64(last.ControlLayer)/1e3, "control-max-us")
		b.ReportMetric(float64(first.InferenceLayer)/1e3, "infer-1-us")
		b.ReportMetric(float64(last.InferenceLayer)/1e3, "infer-max-us")
	}
}

// BenchmarkFigure11CallsPerToken reports API-call intensity per task.
func BenchmarkFigure11CallsPerToken(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := eval.Figure11(benchOpts)
		for _, row := range r.Rows {
			if row.Task == "textcomp" || row.Task == "beam" {
				b.ReportMetric(row.InferCalls, row.Task+"-infer/tok")
				b.ReportMetric(row.ControlCalls, row.Task+"-control/tok")
			}
		}
	}
}

// BenchmarkTable2Inventory verifies the program inventory assembles.
func BenchmarkTable2Inventory(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := eval.Table2()
		b.ReportMetric(float64(len(r.Rows)), "programs")
	}
}

// BenchmarkTable3OpportunityCost reports the decomposition overheads
// (paper: vLLM 64.06 ms → Pie 65.59 ms; sampling +1.32 ms).
func BenchmarkTable3OpportunityCost(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := eval.Table3(benchOpts)
		b.ReportMetric(ms(r.VLLMTPOT), "vllm-tpot-ms")
		b.ReportMetric(ms(r.PieTPOT), "pie-tpot-ms")
		b.ReportMetric(ms(r.SamplingGap), "sampling-gap-ms")
		b.ReportMetric(ms(r.EmbedGap), "embed-gap-ms")
	}
}

// BenchmarkTable4ModelSize reports TPOT across model sizes (paper:
// 16.83/30.30/64.06 ms vLLM; overhead 11.41/5.64/2.39%).
func BenchmarkTable4ModelSize(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := eval.Table4(benchOpts)
		for _, row := range r.Rows {
			b.ReportMetric(ms(row.VLLM), row.Params+"-vllm-ms")
			b.ReportMetric(ms(row.Pie), row.Params+"-pie-ms")
			b.ReportMetric(row.Percent, row.Params+"-overhead-pct")
		}
	}
}

// BenchmarkTable5Batching reports the batching-policy comparison (paper:
// Eager 5.61, K-only 30.09, T-only 78.11, Adaptive 84.85 req/s).
func BenchmarkTable5Batching(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := eval.Table5(benchOpts)
		for _, row := range r.Rows {
			b.ReportMetric(row.Throughput, row.Policy+"-req/s")
		}
	}
}

// BenchmarkSimReplaySpeed reports wall-clock replay throughput of the
// discrete-event core on a full experiment (Figure 6 grid): virtual
// events processed per second of real time, the headline number
// BENCH_sim.json tracks across PRs.
func BenchmarkSimReplaySpeed(b *testing.B) {
	for i := 0; i < b.N; i++ {
		ev0 := sim.TotalEvents()
		t0 := time.Now()
		eval.Figure6(benchOpts)
		wall := time.Since(t0)
		b.ReportMetric(float64(sim.TotalEvents()-ev0)/wall.Seconds(), "events/sec")
	}
}
