package support_test

import (
	"fmt"
	"testing"

	"pie/inferlet"
	"pie/support"
)

// The speculative-decoding primitives must compose correctly in full
// fidelity: extending with a window, rolling back its rejected tail, and
// re-extending must be indistinguishable (in attention terms) from having
// taken the accepted path directly.
func TestTruncateRollbackEquivalence(t *testing.T) {
	gen := func(speculate bool) string {
		return run(t, 31, func(s inferlet.Session) (string, error) {
			ctx, err := support.NewContext(s, s.AvailableModels()[0])
			if err != nil {
				return "", err
			}
			if err := ctx.Fill("roll back the rejected drafts "); err != nil {
				return "", err
			}
			if speculate {
				// Extend with 4 draft tokens, reject the last 2, take the
				// accepted path's continuation.
				mark := ctx.Len()
				if _, err := ctx.ForwardTokens([]int{100, 101, 999, 998}, 4); err != nil {
					return "", err
				}
				if err := ctx.Truncate(mark + 2); err != nil {
					return "", err
				}
				if err := ctx.Sync(); err != nil {
					return "", err
				}
				if err := ctx.Append(102); err != nil {
					return "", err
				}
			} else {
				// The accepted path, taken directly.
				for _, tok := range []int{100, 101, 102} {
					if err := ctx.Append(tok); err != nil {
						return "", err
					}
				}
			}
			d, err := ctx.NextDist()
			if err != nil {
				return "", err
			}
			return fmt.Sprintf("%d:%.6f len=%d", d.ArgMax(), d.Probs[0], ctx.Len()), nil
		})
	}
	direct := gen(false)
	rolled := gen(true)
	if direct != rolled {
		t.Fatalf("rollback path diverged from direct path:\n direct: %s\n rolled: %s", direct, rolled)
	}
}

// ProbeTokens must not disturb the context: probing and then generating
// equals generating directly.
func TestProbeIsSideEffectFree(t *testing.T) {
	gen := func(probeFirst bool) string {
		return run(t, 33, func(s inferlet.Session) (string, error) {
			ctx, err := support.NewContext(s, s.AvailableModels()[0])
			if err != nil {
				return "", err
			}
			if err := ctx.Fill("probing must not persist state "); err != nil {
				return "", err
			}
			if probeFirst {
				if _, err := ctx.ProbeTokens([]int{55, 66, 77}, 3); err != nil {
					return "", err
				}
				if err := ctx.Sync(); err != nil {
					return "", err
				}
			}
			res, err := ctx.Generate(support.GenOpts{MaxTokens: 5})
			if err != nil {
				return "", err
			}
			return fmt.Sprintf("%v len=%d slots=%d", res.Tokens, ctx.Len(), ctx.Slots()), nil
		})
	}
	plain := gen(false)
	probed := gen(true)
	if plain != probed {
		t.Fatalf("probe had side effects:\n plain:  %s\n probed: %s", plain, probed)
	}
}

// ForwardTokens' verification dists must match step-by-step NextDist.
func TestForwardTokensDistsMatchStepwise(t *testing.T) {
	got := run(t, 37, func(s inferlet.Session) (string, error) {
		m := s.AvailableModels()[0]
		a, err := support.NewContext(s, m)
		if err != nil {
			return "", err
		}
		b, err := support.NewContext(s, m)
		if err != nil {
			return "", err
		}
		for _, ctx := range []*support.Context{a, b} {
			if err := ctx.Fill("verify windows against stepwise decoding "); err != nil {
				return "", err
			}
		}
		window := []int{200, 201, 202}
		// Batched: one forward scores all three positions.
		batched, err := a.ForwardTokens(window, 3)
		if err != nil {
			return "", err
		}
		// Stepwise: append one at a time, reading the dist after each.
		var stepwise []int
		for _, tok := range window {
			if err := b.Append(tok); err != nil {
				return "", err
			}
			d, err := b.NextDist()
			if err != nil {
				return "", err
			}
			stepwise = append(stepwise, d.ArgMax())
		}
		for i := range window {
			if batched[i].ArgMax() != stepwise[i] {
				return "", fmt.Errorf("position %d: batched argmax %d != stepwise %d",
					i, batched[i].ArgMax(), stepwise[i])
			}
		}
		return "ok", nil
	})
	if got != "ok" {
		t.Fatal(got)
	}
}
