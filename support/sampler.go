// Package support is Pie's high-level inferlet library (§6.3): the
// Context abstraction that manages KV pages automatically, common sampling
// methods, stopping criteria, and SGLang-style fork/join parallelism — so
// that most applications never touch raw handles. The paper's three-line
// completion example maps to:
//
//	ctx, _ := support.NewContext(s, model)
//	ctx.Fill("Hello, ")
//	ctx.Generate(support.GenOpts{MaxTokens: 10})
package support

import (
	"pie/api"
)

// Sampler picks the next token from a truncated distribution. Sampling
// runs inside the inferlet, in the host language — the programmability the
// paper's R2 requirement asks for.
type Sampler interface {
	Next(d api.Dist) int
}

// Greedy always takes the most probable token.
type Greedy struct{}

// Next implements Sampler.
func (Greedy) Next(d api.Dist) int { return d.ArgMax() }

// TopK samples from the top K entries at the given temperature with a
// deterministic internal stream.
type TopK struct {
	K           int
	Temperature float64
	state       uint64
	seeded      bool
	Seed        uint64
}

func (t *TopK) next64() uint64 {
	if !t.seeded {
		t.state = t.Seed*0x9E3779B97F4A7C15 + 0x1234567
		t.seeded = true
	}
	t.state += 0x9E3779B97F4A7C15
	z := t.state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// Next implements Sampler.
func (t *TopK) Next(d api.Dist) int {
	k := t.K
	if k <= 0 || k > len(d.Tokens) {
		k = len(d.Tokens)
	}
	if k == 0 {
		panic("support: sampling from empty distribution")
	}
	temp := t.Temperature
	if temp <= 0 {
		return d.ArgMax()
	}
	// Temperature re-shaping over the truncated support: p^(1/T).
	weights := make([]float64, k)
	var total float64
	for i := 0; i < k; i++ {
		w := pow(float64(d.Probs[i]), 1/temp)
		weights[i] = w
		total += w
	}
	u := float64(t.next64()>>11) / (1 << 53) * total
	for i := 0; i < k; i++ {
		u -= weights[i]
		if u <= 0 {
			return d.Tokens[i]
		}
	}
	return d.Tokens[k-1]
}

func pow(x, y float64) float64 {
	if x <= 0 {
		return 0
	}
	// exp(y*ln(x)) via the math package would be fine; inline to keep the
	// sampler allocation-free on the hot path.
	return mathExp(y * mathLog(x))
}

// Scripted replays a fixed token sequence — the "teacher forcing" driver
// for timing-mode workloads (see DESIGN.md §1): every API call still
// happens; only the sampled identities are overridden. Falls back to
// greedy when the script is exhausted.
type Scripted struct {
	Tokens []int
	i      int
}

// Next implements Sampler.
func (s *Scripted) Next(d api.Dist) int {
	if s.i < len(s.Tokens) {
		t := s.Tokens[s.i]
		s.i++
		return t
	}
	return d.ArgMax()
}

// Remaining reports unplayed script tokens.
func (s *Scripted) Remaining() int { return len(s.Tokens) - s.i }

// MaskedSampler filters a distribution through an allow-set before
// delegating (grammar-constrained decoding, safety filters).
type MaskedSampler struct {
	Allowed func(token int) bool
	Base    Sampler
}

// Next implements Sampler. If every token is masked it falls back to the
// unmasked argmax.
func (m *MaskedSampler) Next(d api.Dist) int {
	var toks []int
	var probs []float32
	for i, t := range d.Tokens {
		if m.Allowed(t) {
			toks = append(toks, t)
			probs = append(probs, d.Probs[i])
		}
	}
	if len(toks) == 0 {
		return d.ArgMax()
	}
	return m.Base.Next(api.Dist{Tokens: toks, Probs: probs})
}

// BiasedSampler adds per-token logit-space bias before delegating
// (watermarking's greenlist boost).
type BiasedSampler struct {
	Bias func(token int) float32 // additive in log space
	Base Sampler
}

// Next implements Sampler.
func (b *BiasedSampler) Next(d api.Dist) int {
	toks := make([]int, len(d.Tokens))
	probs := make([]float32, len(d.Tokens))
	var sum float32
	for i, t := range d.Tokens {
		toks[i] = t
		p := d.Probs[i] * float32(mathExp(float64(b.Bias(t))))
		probs[i] = p
		sum += p
	}
	for i := range probs {
		probs[i] /= sum
	}
	// Re-rank so ArgMax stays meaningful for greedy bases.
	for i := 1; i < len(probs); i++ {
		for j := i; j > 0 && probs[j] > probs[j-1]; j-- {
			probs[j], probs[j-1] = probs[j-1], probs[j]
			toks[j], toks[j-1] = toks[j-1], toks[j]
		}
	}
	return b.Base.Next(api.Dist{Tokens: toks, Probs: probs})
}
