package support

import (
	"pie/api"
)

// ParallelGenerate decodes several contexts in lockstep from a single
// (single-threaded, event-driven) inferlet: each round it issues every
// branch's get_next_dist asynchronously, awaits them together, samples,
// then issues every branch's embed+forward. Because each context has its
// own command queue, the batch scheduler merges the per-branch calls
// horizontally — the SGLang-style fork/join of the support library (§6.3)
// without any engine support.
//
// samplers[i] drives branch i (nil entries default to Greedy). Branches
// stop individually on their opts; the call returns when all stop.
func ParallelGenerate(ctxs []*Context, opts GenOpts, samplers []Sampler) ([]GenResult, error) {
	n := len(ctxs)
	if opts.MaxTokens <= 0 {
		opts.MaxTokens = 64
	}
	outs := make([][]int, n)
	active := make([]bool, n)
	for i := range active {
		active[i] = true
	}
	remaining := n
	for step := 0; step < opts.MaxTokens && remaining > 0; step++ {
		// Phase 1: issue all distribution requests.
		futs := make([]api.Future[api.Dist], n)
		for i, c := range ctxs {
			if !active[i] {
				continue
			}
			f, err := c.sample.NextDist(c.lastOut)
			if err != nil {
				return nil, err
			}
			futs[i] = f
		}
		// Phase 2: await, sample, and issue the next forwards.
		for i, c := range ctxs {
			if !active[i] {
				continue
			}
			dist, err := futs[i].Get()
			if err != nil {
				return nil, err
			}
			var s Sampler = Greedy{}
			if samplers != nil && samplers[i] != nil {
				s = samplers[i]
			} else if opts.Sampler != nil {
				s = opts.Sampler
			}
			tok := s.Next(dist)
			stopped := false
			for _, st := range opts.StopTokens {
				if tok == st {
					stopped = true
				}
			}
			if !stopped {
				outs[i] = append(outs[i], tok)
				c.S.ReportOutputTokens(1)
				if err := c.Append(tok); err != nil {
					return nil, err
				}
				if opts.Stop != nil && opts.Stop(outs[i]) {
					stopped = true
				}
			}
			if stopped {
				active[i] = false
				remaining--
			}
		}
	}
	results := make([]GenResult, n)
	for i, c := range ctxs {
		text, err := c.DecodeText(outs[i])
		if err != nil {
			return nil, err
		}
		results[i] = GenResult{Tokens: outs[i], Text: text}
	}
	return results, nil
}

// AwaitAll drains a set of futures, returning the first error. It is
// sugar over the api.All combinator.
func AwaitAll[T any](futs []api.Future[T]) ([]T, error) {
	return api.All(futs...).Get()
}
