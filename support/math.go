package support

import "math"

// Thin wrappers keep the samplers' call sites tidy and make it obvious the
// package's only float dependency is stdlib math.
func mathExp(x float64) float64 { return math.Exp(x) }
func mathLog(x float64) float64 { return math.Log(x) }
