package support_test

import (
	"fmt"
	"strings"
	"testing"

	"pie"
	"pie/api"
	"pie/inferlet"
	"pie/support"
)

// run executes body inside a registered inferlet on a fresh full-fidelity
// engine and returns its Send output.
func run(t *testing.T, seed uint64, body func(s inferlet.Session) (string, error)) string {
	t.Helper()
	e := pie.New(pie.Config{Seed: seed, Mode: pie.ModeFull})
	e.MustRegister(inferlet.Program{
		Name: "t", BinarySize: 64 << 10,
		Run: func(s inferlet.Session) error {
			out, err := body(s)
			if err != nil {
				return err
			}
			s.Send(out)
			return nil
		},
	})
	var got string
	if err := e.RunClient(func() {
		h, err := e.Launch(pie.Spec("t"))
		if err != nil {
			t.Errorf("launch: %v", err)
			return
		}
		got, _ = h.Recv().Get()
		if err := h.Wait(); err != nil {
			t.Errorf("inferlet: %v", err)
		}
	}); err != nil {
		t.Fatal(err)
	}
	return got
}

func TestContextThreeLineCompletion(t *testing.T) {
	// The paper's three-line support-library example.
	got := run(t, 42, func(s inferlet.Session) (string, error) {
		ctx, err := support.NewContext(s, s.AvailableModels()[0])
		if err != nil {
			return "", err
		}
		if err := ctx.Fill("Hello, "); err != nil {
			return "", err
		}
		res, err := ctx.Generate(support.GenOpts{MaxTokens: 10})
		if err != nil {
			return "", err
		}
		return res.Text, nil
	})
	if got == "" {
		t.Fatal("no text generated")
	}
	// Must match the raw-API loop from the same seed (the engine_test
	// autoregressive program generates " did..." for seed 42).
	if !strings.Contains(got, "did") {
		t.Logf("note: text %q (model content is seed-dependent)", got)
	}
}

func TestContextMatchesRawAPI(t *testing.T) {
	// Generate 8 tokens with the Context abstraction...
	viaCtx := run(t, 7, func(s inferlet.Session) (string, error) {
		ctx, err := support.NewContext(s, s.AvailableModels()[0])
		if err != nil {
			return "", err
		}
		if err := ctx.Fill("the answer is "); err != nil {
			return "", err
		}
		res, err := ctx.Generate(support.GenOpts{MaxTokens: 8})
		if err != nil {
			return "", err
		}
		return fmt.Sprint(res.Tokens), nil
	})
	// ...and with raw v2 capability calls.
	viaRaw := run(t, 7, func(s inferlet.Session) (string, error) {
		m := s.AvailableModels()[0]
		q, err := s.Open(m.ID)
		if err != nil {
			return "", err
		}
		tokenizer, _ := q.Tokenizer()
		alloc, _ := q.Alloc()
		text, _ := q.Text()
		fwd, _ := q.Forward()
		sample, _ := q.Sample()
		toks, _ := tokenizer.Encode("the answer is ")
		prom, err := toks.Get()
		if err != nil {
			return "", err
		}
		limit := len(prom) + 8
		emb, _ := alloc.Embeds(len(prom))
		gen, _ := alloc.Embeds(1)
		kv, _ := alloc.Pages((limit + m.PageSize - 1) / m.PageSize)
		pos := make([]int, len(prom))
		for i := range pos {
			pos[i] = i
		}
		text.Embed(prom, pos, emb)
		fwd.Run(inferlet.Input(emb...), inferlet.AppendKv(kv...), inferlet.Output(gen...))
		var out []int
		for i := len(prom); i < limit; i++ {
			df, err := sample.NextDist(gen[0])
			if err != nil {
				return "", err
			}
			d, err := df.Get()
			if err != nil {
				return "", err
			}
			tok := d.ArgMax()
			out = append(out, tok)
			text.Embed([]int{tok}, []int{i}, gen)
			fwd.Run(inferlet.ReadKv(kv...), inferlet.Input(gen...), inferlet.AppendKv(kv...), inferlet.Output(gen...))
		}
		return fmt.Sprint(out), nil
	})
	if viaCtx != viaRaw {
		t.Fatalf("Context (%s) and raw API (%s) generated different tokens", viaCtx, viaRaw)
	}
}

func TestForkChildrenSeeParentContext(t *testing.T) {
	got := run(t, 11, func(s inferlet.Session) (string, error) {
		ctx, err := support.NewContext(s, s.AvailableModels()[0])
		if err != nil {
			return "", err
		}
		if err := ctx.Fill("fork me please right now "); err != nil {
			return "", err
		}
		parentDist, err := ctx.NextDist()
		if err != nil {
			return "", err
		}
		kids, err := ctx.Fork(2)
		if err != nil {
			return "", err
		}
		d0, err := kids[0].NextDist()
		if err != nil {
			return "", err
		}
		d1, err := kids[1].NextDist()
		if err != nil {
			return "", err
		}
		if d0.ArgMax() != parentDist.ArgMax() || d1.ArgMax() != parentDist.ArgMax() {
			return "", fmt.Errorf("forked children disagree with parent: %d/%d vs %d",
				d0.ArgMax(), d1.ArgMax(), parentDist.ArgMax())
		}
		// Children diverge independently.
		if err := kids[0].Append(d0.Tokens[0]); err != nil {
			return "", err
		}
		if err := kids[1].Append(d1.Tokens[1]); err != nil {
			return "", err
		}
		a, err := kids[0].NextDist()
		if err != nil {
			return "", err
		}
		b, err := kids[1].NextDist()
		if err != nil {
			return "", err
		}
		if a.ArgMax() == b.ArgMax() {
			// Possible but unlikely; not an error per se. Report it.
			return "same", nil
		}
		return "diverged", nil
	})
	if got != "diverged" && got != "same" {
		t.Fatalf("fork test failed: %q", got)
	}
}

// A forked child appending tokens must match a never-forked context that
// took the same path (fork is semantically transparent).
func TestForkTransparency(t *testing.T) {
	straight := run(t, 13, func(s inferlet.Session) (string, error) {
		ctx, _ := support.NewContext(s, s.AvailableModels()[0])
		if err := ctx.Fill("transparent forks "); err != nil {
			return "", err
		}
		res, err := ctx.Generate(support.GenOpts{MaxTokens: 6})
		if err != nil {
			return "", err
		}
		return fmt.Sprint(res.Tokens), nil
	})
	forked := run(t, 13, func(s inferlet.Session) (string, error) {
		ctx, _ := support.NewContext(s, s.AvailableModels()[0])
		if err := ctx.Fill("transparent forks "); err != nil {
			return "", err
		}
		kids, err := ctx.Fork(1)
		if err != nil {
			return "", err
		}
		res, err := kids[0].Generate(support.GenOpts{MaxTokens: 6})
		if err != nil {
			return "", err
		}
		return fmt.Sprint(res.Tokens), nil
	})
	if straight != forked {
		t.Fatalf("forked path diverged: straight=%s forked=%s", straight, forked)
	}
}

func TestParallelGenerateLockstep(t *testing.T) {
	got := run(t, 17, func(s inferlet.Session) (string, error) {
		root, err := support.NewContext(s, s.AvailableModels()[0])
		if err != nil {
			return "", err
		}
		if err := root.Fill("parallel branches "); err != nil {
			return "", err
		}
		kids, err := root.Fork(3)
		if err != nil {
			return "", err
		}
		samplers := []support.Sampler{
			support.Greedy{},
			&support.TopK{K: 4, Temperature: 0.9, Seed: 1},
			&support.TopK{K: 4, Temperature: 0.9, Seed: 2},
		}
		res, err := support.ParallelGenerate(kids, support.GenOpts{MaxTokens: 5}, samplers)
		if err != nil {
			return "", err
		}
		if len(res) != 3 {
			return "", fmt.Errorf("got %d results", len(res))
		}
		for i, r := range res {
			if len(r.Tokens) != 5 {
				return "", fmt.Errorf("branch %d generated %d tokens", i, len(r.Tokens))
			}
		}
		return "ok", nil
	})
	if got != "ok" {
		t.Fatal(got)
	}
}

// Masking affects subsequent forwards (not already-computed outputs), so
// compare the post-append distribution of a masked run against an
// unmasked run from the same seed.
func TestMaskRangeChangesDist(t *testing.T) {
	gen := func(mask bool) string {
		return run(t, 19, func(s inferlet.Session) (string, error) {
			ctx, _ := support.NewContext(s, s.AvailableModels()[0])
			if err := ctx.Fill("mask the early tokens of this context away "); err != nil {
				return "", err
			}
			if mask {
				if err := ctx.MaskRange(0, 4, true); err != nil {
					return "", err
				}
				if err := ctx.Sync(); err != nil {
					return "", err
				}
			}
			if err := ctx.Append(100); err != nil {
				return "", err
			}
			d, err := ctx.NextDist()
			if err != nil {
				return "", err
			}
			return fmt.Sprintf("%d:%.6f", d.ArgMax(), d.Probs[0]), nil
		})
	}
	unmasked := gen(false)
	masked := gen(true)
	if unmasked == masked {
		t.Fatalf("masking [0,4) had no observable effect: %s", masked)
	}
}

func TestSamplers(t *testing.T) {
	d := api.Dist{Tokens: []int{10, 20, 30}, Probs: []float32{0.5, 0.3, 0.2}}
	if (support.Greedy{}).Next(d) != 10 {
		t.Fatal("greedy did not take argmax")
	}
	s := &support.Scripted{Tokens: []int{7, 8}}
	if s.Next(d) != 7 || s.Next(d) != 8 {
		t.Fatal("scripted order wrong")
	}
	if s.Next(d) != 10 {
		t.Fatal("scripted fallback to greedy failed")
	}
	tk := &support.TopK{K: 2, Temperature: 1.0, Seed: 3}
	counts := map[int]int{}
	for i := 0; i < 200; i++ {
		counts[tk.Next(d)]++
	}
	if counts[30] != 0 {
		t.Fatal("TopK(2) sampled outside the top 2")
	}
	if counts[10] == 0 || counts[20] == 0 {
		t.Fatalf("TopK degenerate: %v", counts)
	}
	masked := &support.MaskedSampler{
		Allowed: func(tok int) bool { return tok == 20 },
		Base:    support.Greedy{},
	}
	if masked.Next(d) != 20 {
		t.Fatal("masked sampler ignored the mask")
	}
	biased := &support.BiasedSampler{
		Bias: func(tok int) float32 {
			if tok == 30 {
				return 10 // huge greenlist boost
			}
			return 0
		},
		Base: support.Greedy{},
	}
	if biased.Next(d) != 30 {
		t.Fatal("biased sampler ignored the bias")
	}
}

func TestContextDropReleasesPages(t *testing.T) {
	e := pie.New(pie.Config{Seed: 23, Mode: pie.ModeTiming})
	e.MustRegister(inferlet.Program{
		Name: "dropper", BinarySize: 1 << 10,
		Run: func(s inferlet.Session) error {
			ctx, err := support.NewContext(s, s.AvailableModels()[0])
			if err != nil {
				return err
			}
			if err := ctx.Fill(strings.Repeat("words and more words ", 10)); err != nil {
				return err
			}
			if err := ctx.Drop(); err != nil {
				return err
			}
			return ctx.Sync()
		},
	})
	if err := e.RunClient(func() {
		h, _ := e.Launch(pie.Spec("dropper"))
		if err := h.Wait(); err != nil {
			t.Error(err)
		}
	}); err != nil {
		t.Fatal(err)
	}
	inUse, _ := e.PoolStats("llama-1b")
	if inUse != 0 {
		t.Fatalf("pages leaked after Drop: %d", inUse)
	}
}
