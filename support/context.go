package support

import (
	"errors"
	"fmt"

	"pie/api"
	"pie/inferlet"
)

// Context automates KV-page management for a single generation stream: it
// allocates pages as the sequence grows, runs prefill and decode forwards,
// and exposes token-level masking, forking, export/import, speculative
// extension with rollback, and masked-page release — the high-level face
// of the paper's R1 capabilities (§6.3).
//
// A Context owns one command queue and the capabilities negotiated from
// it (allocate, input_text, forward, output_text, tokenize); building one
// against a model lacking any of those traits fails with
// api.ErrNoSuchTrait.
//
// Two counters describe the stream. slots counts physical KV entries
// consumed (including masked/rolled-back ones); Len (logical length)
// counts live tokens and determines the next sequence position. They
// differ only after Truncate (speculative decoding rollback).
type Context struct {
	S     inferlet.Session
	Q     *inferlet.Queue
	Model api.ModelInfo

	alloc  *inferlet.Alloc
	text   *inferlet.Text
	fwd    *inferlet.Forward
	sample *inferlet.Sample
	tok    *inferlet.Tokenizer

	ownsQueue bool

	entries []pageEntry
	pinned  []api.KvPage // read-only attention context (modular caching)
	slots   int          // physical KV slots consumed
	pos     int          // next sequence position (logical length)
	Tokens  []int        // logical token history (prompt + generated)

	genEmb  []api.Embed // reusable decode slot
	lastOut api.Embed   // output embedding of the last forward
	hasOut  bool
}

type pageEntry struct {
	h     api.KvPage
	owned bool // false for fork-shared or imported pages
	live  bool // false once released via ReleaseMaskedPages
}

// ErrNoOutput is returned when sampling is requested before any forward
// produced an output embedding.
var ErrNoOutput = errors.New("support: context has no output embedding yet")

// NewContext opens a context on its own command queue against model m.
func NewContext(s inferlet.Session, m api.ModelInfo) (*Context, error) {
	q, err := s.Open(m.ID)
	if err != nil {
		return nil, err
	}
	c, err := NewContextOnQueue(s, q)
	if err != nil {
		return nil, err
	}
	c.ownsQueue = true
	return c, nil
}

// NewContextOnQueue opens a context on an existing queue (several contexts
// can share one queue when their ops should serialize). The context
// negotiates its capabilities from the queue; Drop leaves a shared queue
// open.
func NewContextOnQueue(s inferlet.Session, q *inferlet.Queue) (*Context, error) {
	c := &Context{S: s, Q: q, Model: q.Model()}
	var err error
	if c.alloc, err = q.Alloc(); err != nil {
		return nil, err
	}
	if c.text, err = q.Text(); err != nil {
		return nil, err
	}
	if c.fwd, err = q.Forward(); err != nil {
		return nil, err
	}
	if c.sample, err = q.Sample(); err != nil {
		return nil, err
	}
	if c.tok, err = q.Tokenizer(); err != nil {
		return nil, err
	}
	if c.genEmb, err = c.alloc.Embeds(1); err != nil {
		return nil, err
	}
	return c, nil
}

// Len returns the logical token length of the context.
func (c *Context) Len() int { return c.pos }

// Slots returns physical KV slots consumed (≥ Len after rollbacks).
func (c *Context) Slots() int { return c.slots }

// Alloc exposes the context's allocate capability (advanced use: export,
// import, explicit page management on the context's queue).
func (c *Context) Alloc() *inferlet.Alloc { return c.alloc }

// Pages returns the live page handles (advanced use: export, masking).
func (c *Context) Pages() []api.KvPage {
	var out []api.KvPage
	for _, e := range c.entries {
		if e.live {
			out = append(out, e.h)
		}
	}
	return out
}

func (c *Context) capacity() int { return len(c.entries) * c.Model.PageSize }

// ensure grows the page list to hold n more physical slots.
func (c *Context) ensure(n int) error {
	need := c.slots + n - c.capacity()
	if need <= 0 {
		return nil
	}
	ps := c.Model.PageSize
	add := (need + ps - 1) / ps
	pages, err := c.alloc.Pages(add)
	if err != nil {
		return err
	}
	for _, p := range pages {
		c.entries = append(c.entries, pageEntry{h: p, owned: true, live: true})
	}
	return nil
}

// ctxPages lists attention-input pages: pinned read-only context first,
// then the live stream pages.
func (c *Context) ctxPages() []api.KvPage {
	return append(append([]api.KvPage(nil), c.pinned...), c.Pages()...)
}

// ComposeContext pins foreign pages (e.g. imported prompt modules cached
// at fixed schema positions) as read-only attention context and starts
// the context's own token stream at position basePos. The pinned pages
// are never written, masked, or deallocated by this context.
func ComposeContext(c *Context, pinned []api.KvPage, basePos int) (*Context, error) {
	if c.slots != 0 {
		return nil, errors.New("support: ComposeContext requires a fresh context")
	}
	c.pinned = append([]api.KvPage(nil), pinned...)
	c.pos = basePos
	return c, nil
}

// outPages lists the page(s) that will receive the next n slots.
func (c *Context) outPages(n int) []api.KvPage {
	ps := c.Model.PageSize
	first := c.slots / ps
	last := (c.slots + n - 1) / ps
	var out []api.KvPage
	for i := first; i <= last && i < len(c.entries); i++ {
		out = append(out, c.entries[i].h)
	}
	return out
}

// Encode tokenizes text through the model's vocabulary (blocking).
func (c *Context) Encode(text string) ([]int, error) {
	f, err := c.tok.Encode(text)
	if err != nil {
		return nil, err
	}
	return f.Get()
}

// Vocabs retrieves the byte expansion of every vocabulary entry
// (blocking; grammar-constrained decoding).
func (c *Context) Vocabs() ([][]byte, error) {
	f, err := c.tok.Vocabs()
	if err != nil {
		return nil, err
	}
	return f.Get()
}

// Fill tokenizes text and prefills it into the context.
func (c *Context) Fill(text string) error {
	toks, err := c.Encode(text)
	if err != nil {
		return err
	}
	return c.FillTokens(toks)
}

// FillTokens prefills toks, extending the KV cache and producing an output
// embedding for the last token.
func (c *Context) FillTokens(toks []int) error {
	if len(toks) == 0 {
		return nil
	}
	_, err := c.extend(toks, true, 1, false)
	return err
}

// extend is the shared forward driver: embeds toks at sequential
// positions, attends the live context, optionally persists KV, requests
// `outs` output embeddings (the last one also refreshes the decode slot
// when keepKV), and fetches their next-token distributions when wantDists.
func (c *Context) extend(toks []int, keepKV bool, outs int, wantDists bool) ([]api.Dist, error) {
	n := len(toks)
	if outs > n {
		return nil, fmt.Errorf("support: %d outputs requested for %d tokens", outs, n)
	}
	if keepKV {
		if err := c.ensure(n); err != nil {
			return nil, err
		}
	}
	emb, err := c.alloc.Embeds(n)
	if err != nil {
		return nil, err
	}
	defer c.alloc.FreeEmbeds(emb)
	pos := make([]int, n)
	for i := range pos {
		pos[i] = c.pos + i
	}
	if _, err := c.text.Embed(toks, pos, emb); err != nil {
		return nil, err
	}
	var outEmb []api.Embed
	if outs > 0 {
		switch {
		case outs == 1 && keepKV:
			outEmb = c.genEmb
		case keepKV:
			// Temps for all but the last position; the frontier output
			// lands in the persistent decode slot so NextDist keeps
			// working after a multi-output extension.
			tmp, err := c.alloc.Embeds(outs - 1)
			if err != nil {
				return nil, err
			}
			defer c.alloc.FreeEmbeds(tmp)
			outEmb = append(append([]api.Embed(nil), tmp...), c.genEmb[0])
		default:
			// Probes must not clobber the frontier output.
			tmp, err := c.alloc.Embeds(outs)
			if err != nil {
				return nil, err
			}
			defer c.alloc.FreeEmbeds(tmp)
			outEmb = tmp
		}
	}
	opts := []inferlet.ForwardOption{
		inferlet.ReadKv(c.ctxPages()...),
		inferlet.Input(emb...),
		inferlet.Output(outEmb...),
	}
	if keepKV {
		opts = append(opts, inferlet.AppendKv(c.outPages(n)...))
	}
	if _, err := c.fwd.Run(opts...); err != nil {
		return nil, err
	}
	var dists []api.Dist
	if wantDists && outs > 0 {
		futs := make([]api.Future[api.Dist], outs)
		for i, eh := range outEmb {
			f, err := c.sample.NextDist(eh)
			if err != nil {
				return nil, err
			}
			futs[i] = f
		}
		dists, err = api.All(futs...).Get()
		if err != nil {
			return nil, err
		}
	}
	if keepKV {
		c.slots += n
		c.pos += n
		c.Tokens = append(c.Tokens, toks...)
		if outs >= 1 {
			c.lastOut = c.genEmb[0]
			c.hasOut = true
		}
	}
	return dists, nil
}

// NextDist returns the next-token distribution after the last Fill or
// decode step.
func (c *Context) NextDist() (api.Dist, error) {
	if !c.hasOut {
		return api.Dist{}, ErrNoOutput
	}
	f, err := c.sample.NextDist(c.lastOut)
	if err != nil {
		return api.Dist{}, err
	}
	return f.Get()
}

// Append accepts token tok into the context (one decode step).
func (c *Context) Append(tok int) error {
	return c.FillTokens([]int{tok})
}

// ForwardTokens extends the context by toks in a single forward and
// returns the next-token distribution after every one of the last `outs`
// tokens — the verification primitive of speculative and Jacobi decoding:
// one kernel scores `outs` positions at once.
func (c *Context) ForwardTokens(toks []int, outs int) ([]api.Dist, error) {
	return c.extend(toks, true, outs, true)
}

// ProbeTokens runs toks through the model against the live context
// WITHOUT persisting KV or advancing the stream, returning dists for the
// last `outs` tokens (Jacobi iteration).
func (c *Context) ProbeTokens(toks []int, outs int) ([]api.Dist, error) {
	return c.extend(toks, false, outs, true)
}

// Truncate rolls the logical stream back to length n: the physical KV of
// the rejected tail is masked out (slots are not reclaimed — that is what
// ReleaseMaskedPages is for) and positions rewind so the next tokens
// overlay the rejected ones. The rollback half of speculative decoding.
func (c *Context) Truncate(n int) error {
	if n < 0 || n > c.pos {
		return fmt.Errorf("support: Truncate(%d) outside [0,%d]", n, c.pos)
	}
	drop := c.pos - n
	if drop == 0 {
		return nil
	}
	if err := c.MaskSlots(c.slots-drop, c.slots, true); err != nil {
		return err
	}
	c.pos = n
	c.Tokens = c.Tokens[:n]
	c.hasOut = false // outputs referred to the rejected tail
	return nil
}

// MaskSlots sets attention mask bits over physical slot range [from, to)
// (true hides them).
func (c *Context) MaskSlots(from, to int, masked bool) error {
	ps := c.Model.PageSize
	for p := 0; p < len(c.entries); p++ {
		if !c.entries[p].live {
			continue
		}
		lo, hi := p*ps, (p+1)*ps
		if hi <= from || lo >= to {
			continue
		}
		bits := make([]bool, ps)
		for i := 0; i < ps; i++ {
			slot := lo + i
			if slot >= from && slot < to {
				bits[i] = masked
			}
		}
		if _, err := c.fwd.MaskPage(c.entries[p].h, bits); err != nil {
			return err
		}
	}
	return nil
}

// MaskRange masks token positions [from, to). It equals MaskSlots while
// the context has never been truncated (positions == slots), which holds
// for every masking application (sinks, windows, hierarchical attention,
// spec-drop).
func (c *Context) MaskRange(from, to int, masked bool) error {
	return c.MaskSlots(from, to, masked)
}

// ReleaseMaskedPages deallocates owned pages whose slots are entirely
// masked (e.g. dropped tool specs, evicted windows), returning the number
// of pages freed. Freed pages leave the attention input immediately; slot
// numbering is preserved.
func (c *Context) ReleaseMaskedPages(fullyMaskedRanges [][2]int) (int, error) {
	ps := c.Model.PageSize
	freed := 0
	var toFree []api.KvPage
	for p := 0; p < len(c.entries); p++ {
		if !c.entries[p].live || !c.entries[p].owned {
			continue
		}
		lo, hi := p*ps, (p+1)*ps
		if hi > c.slots {
			continue // tail page still receiving tokens
		}
		covered := false
		for _, r := range fullyMaskedRanges {
			if r[0] <= lo && hi <= r[1] {
				covered = true
				break
			}
		}
		if !covered {
			continue
		}
		c.entries[p].live = false
		toFree = append(toFree, c.entries[p].h)
		freed++
	}
	if len(toFree) > 0 {
		if err := c.alloc.FreePages(toFree); err != nil {
			return freed, err
		}
	}
	return freed, nil
}

// GenOpts parameterizes Generate.
type GenOpts struct {
	MaxTokens int
	Sampler   Sampler
	// StopTokens ends generation when one is produced (it is not added).
	StopTokens []int
	// Stop, when non-nil, ends generation after any step where it returns
	// true over the tokens generated so far.
	Stop func(generated []int) bool
	// OnToken, when non-nil, observes each accepted token (tool-call
	// detection, §7.2 optimization #2).
	OnToken func(tok int)
}

// GenResult reports a Generate run.
type GenResult struct {
	Tokens []int
	Text   string
}

// Generate decodes autoregressively until a stop condition.
func (c *Context) Generate(opts GenOpts) (GenResult, error) {
	if opts.MaxTokens <= 0 {
		opts.MaxTokens = 64
	}
	sampler := opts.Sampler
	if sampler == nil {
		sampler = Greedy{}
	}
	var out []int
	for len(out) < opts.MaxTokens {
		dist, err := c.NextDist()
		if err != nil {
			return GenResult{}, err
		}
		tok := sampler.Next(dist)
		stop := false
		for _, st := range opts.StopTokens {
			if tok == st {
				stop = true
			}
		}
		if stop {
			break
		}
		out = append(out, tok)
		c.S.ReportOutputTokens(1)
		if opts.OnToken != nil {
			opts.OnToken(tok)
		}
		if err := c.Append(tok); err != nil {
			return GenResult{}, err
		}
		if opts.Stop != nil && opts.Stop(out) {
			break
		}
	}
	text, err := c.DecodeText(out)
	if err != nil {
		return GenResult{}, err
	}
	return GenResult{Tokens: out, Text: text}, nil
}

// DecodeText detokenizes ids through the model's vocabulary.
func (c *Context) DecodeText(ids []int) (string, error) {
	f, err := c.tok.Decode(ids)
	if err != nil {
		return "", err
	}
	return f.Get()
}

// Fork creates n children that share this context's pages zero-copy,
// except the page holding the last slot, which is copied per child so
// divergent continuations never write into shared state — the page-level
// sharing that powers tree search and beam search (R1). Children also
// inherit the parent's current output embedding (handles live in the same
// inferlet's address space), so their first NextDist needs no extra
// forward. The parent must outlive its children and must not Append while
// forks are active.
func (c *Context) Fork(n int) ([]*Context, error) {
	// The children's tail-page copies are issued on their own queues, so
	// the parent's pending prefill/decode writes must land first.
	if err := c.Sync(); err != nil {
		return nil, err
	}
	ps := c.Model.PageSize
	split := 0 // number of fully-shared pages
	tailTokens := 0
	if c.slots > 0 {
		split = (c.slots - 1) / ps
		tailTokens = c.slots - split*ps
	}
	children := make([]*Context, 0, n)
	for i := 0; i < n; i++ {
		child, err := NewContext(c.S, c.Model)
		if err != nil {
			return nil, err
		}
		for j := 0; j < split; j++ {
			child.entries = append(child.entries, pageEntry{h: c.entries[j].h, owned: false, live: c.entries[j].live})
		}
		if tailTokens > 0 {
			np, err := child.alloc.Pages(1)
			if err != nil {
				return nil, err
			}
			if _, err := child.alloc.CopyPage(c.entries[split].h, np[0], 0, 0, tailTokens); err != nil {
				return nil, err
			}
			child.entries = append(child.entries, pageEntry{h: np[0], owned: true, live: true})
		}
		child.slots = c.slots
		child.pos = c.pos
		child.Tokens = append([]int(nil), c.Tokens...)
		child.lastOut = c.lastOut
		child.hasOut = c.hasOut
		children = append(children, child)
	}
	return children, nil
}

// Drop releases every owned live page and the decode slot; the context
// becomes unusable but its queue stays open (fire-and-forget: the
// deallocations are queue-ordered and need no round trip). Use Close to
// also close the queue and reclaim everything it still tracks.
func (c *Context) Drop() error {
	var own []api.KvPage
	for _, e := range c.entries {
		if e.owned && e.live {
			own = append(own, e.h)
		}
	}
	if len(own) > 0 {
		if err := c.alloc.FreePages(own); err != nil {
			return err
		}
	}
	c.entries = nil
	if c.genEmb != nil {
		if err := c.alloc.FreeEmbeds(c.genEmb); err != nil {
			return err
		}
		c.genEmb = nil
	}
	return nil
}

// Close drains and closes the context's queue, reclaiming every resource
// allocated or imported through it (queue-scoped reclamation). Only valid
// for contexts that own their queue (NewContext); contexts sharing a
// queue must Drop instead.
func (c *Context) Close() error {
	if !c.ownsQueue {
		return errors.New("support: Close on a context sharing its queue; use Drop")
	}
	c.entries = nil
	c.genEmb = nil
	return c.Q.Close()
}

// Sync drains the context's command queue.
func (c *Context) Sync() error { return c.Q.Sync() }

// Export publishes the context's live pages under name. Exports should be
// page-aligned (Len a multiple of PageSize) so importers can extend them.
func (c *Context) Export(name string) error {
	if err := c.Sync(); err != nil {
		return err
	}
	return c.alloc.Export(name, c.Pages())
}

// ImportContext maps an exported context: pages are shared, so the result
// must be treated as a read-only prefix (extend it; never mask it).
func ImportContext(s inferlet.Session, m api.ModelInfo, name string, tokens []int) (*Context, error) {
	c, err := NewContext(s, m)
	if err != nil {
		return nil, err
	}
	pages, err := c.alloc.Import(name)
	if err != nil {
		return nil, err
	}
	for _, p := range pages {
		c.entries = append(c.entries, pageEntry{h: p, owned: false, live: true})
	}
	c.slots = len(tokens)
	c.pos = len(tokens)
	c.Tokens = append([]int(nil), tokens...)
	return c, nil
}
