package support

import (
	"errors"
	"fmt"

	"pie/api"
	"pie/inferlet"
)

// Context automates KV-page management for a single generation stream: it
// allocates pages as the sequence grows, runs prefill and decode forwards,
// and exposes token-level masking, forking, export/import, speculative
// extension with rollback, and masked-page release — the high-level face
// of the paper's R1 capabilities (§6.3).
//
// Two counters describe the stream. slots counts physical KV entries
// consumed (including masked/rolled-back ones); Len (logical length)
// counts live tokens and determines the next sequence position. They
// differ only after Truncate (speculative decoding rollback).
type Context struct {
	S     inferlet.Session
	Q     api.Queue
	Model api.ModelInfo

	entries []pageEntry
	pinned  []api.KvPage // read-only attention context (modular caching)
	slots   int          // physical KV slots consumed
	pos     int          // next sequence position (logical length)
	Tokens  []int        // logical token history (prompt + generated)

	genEmb  []api.Embed // reusable decode slot
	lastOut api.Embed   // output embedding of the last forward
	hasOut  bool
}

type pageEntry struct {
	h     api.KvPage
	owned bool // false for fork-shared or imported pages
	live  bool // false once released via ReleaseMaskedPages
}

// ErrNoOutput is returned when sampling is requested before any forward
// produced an output embedding.
var ErrNoOutput = errors.New("support: context has no output embedding yet")

// NewContext opens a context on its own command queue against model m.
func NewContext(s inferlet.Session, m api.ModelInfo) (*Context, error) {
	q, err := s.CreateQueue(m.ID)
	if err != nil {
		return nil, err
	}
	return NewContextOnQueue(s, q, m)
}

// NewContextOnQueue opens a context on an existing queue (several contexts
// can share one queue when their ops should serialize).
func NewContextOnQueue(s inferlet.Session, q api.Queue, m api.ModelInfo) (*Context, error) {
	genEmb, err := s.AllocEmbeds(q, 1)
	if err != nil {
		return nil, err
	}
	return &Context{S: s, Q: q, Model: m, genEmb: genEmb}, nil
}

// Len returns the logical token length of the context.
func (c *Context) Len() int { return c.pos }

// Slots returns physical KV slots consumed (≥ Len after rollbacks).
func (c *Context) Slots() int { return c.slots }

// Pages returns the live page handles (advanced use: export, masking).
func (c *Context) Pages() []api.KvPage {
	var out []api.KvPage
	for _, e := range c.entries {
		if e.live {
			out = append(out, e.h)
		}
	}
	return out
}

func (c *Context) capacity() int { return len(c.entries) * c.Model.PageSize }

// ensure grows the page list to hold n more physical slots.
func (c *Context) ensure(n int) error {
	need := c.slots + n - c.capacity()
	if need <= 0 {
		return nil
	}
	ps := c.Model.PageSize
	add := (need + ps - 1) / ps
	pages, err := c.S.AllocKvPages(c.Q, add)
	if err != nil {
		return err
	}
	for _, p := range pages {
		c.entries = append(c.entries, pageEntry{h: p, owned: true, live: true})
	}
	return nil
}

// ctxPages lists attention-input pages: pinned read-only context first,
// then the live stream pages.
func (c *Context) ctxPages() []api.KvPage {
	return append(append([]api.KvPage(nil), c.pinned...), c.Pages()...)
}

// ComposeContext pins foreign pages (e.g. imported prompt modules cached
// at fixed schema positions) as read-only attention context and starts
// the context's own token stream at position basePos. The pinned pages
// are never written, masked, or deallocated by this context.
func ComposeContext(c *Context, pinned []api.KvPage, basePos int) (*Context, error) {
	if c.slots != 0 {
		return nil, errors.New("support: ComposeContext requires a fresh context")
	}
	c.pinned = append([]api.KvPage(nil), pinned...)
	c.pos = basePos
	return c, nil
}

// outPages lists the page(s) that will receive the next n slots.
func (c *Context) outPages(n int) []api.KvPage {
	ps := c.Model.PageSize
	first := c.slots / ps
	last := (c.slots + n - 1) / ps
	var out []api.KvPage
	for i := first; i <= last && i < len(c.entries); i++ {
		out = append(out, c.entries[i].h)
	}
	return out
}

// Fill tokenizes text and prefills it into the context.
func (c *Context) Fill(text string) error {
	f, err := c.S.Tokenize(c.Q, text)
	if err != nil {
		return err
	}
	toks, err := f.Get()
	if err != nil {
		return err
	}
	return c.FillTokens(toks)
}

// FillTokens prefills toks, extending the KV cache and producing an output
// embedding for the last token.
func (c *Context) FillTokens(toks []int) error {
	if len(toks) == 0 {
		return nil
	}
	_, err := c.extend(toks, true, 1, false)
	return err
}

// extend is the shared forward driver: embeds toks at sequential
// positions, attends the live context, optionally persists KV, requests
// `outs` output embeddings (the last one also refreshes the decode slot
// when keepKV), and fetches their next-token distributions when wantDists.
func (c *Context) extend(toks []int, keepKV bool, outs int, wantDists bool) ([]api.Dist, error) {
	n := len(toks)
	if outs > n {
		return nil, fmt.Errorf("support: %d outputs requested for %d tokens", outs, n)
	}
	if keepKV {
		if err := c.ensure(n); err != nil {
			return nil, err
		}
	}
	emb, err := c.S.AllocEmbeds(c.Q, n)
	if err != nil {
		return nil, err
	}
	defer c.S.DeallocEmbeds(c.Q, emb)
	pos := make([]int, n)
	for i := range pos {
		pos[i] = c.pos + i
	}
	if _, err := c.S.EmbedText(c.Q, toks, pos, emb); err != nil {
		return nil, err
	}
	var outEmb []api.Embed
	if outs > 0 {
		switch {
		case outs == 1 && keepKV:
			outEmb = c.genEmb
		case keepKV:
			// Temps for all but the last position; the frontier output
			// lands in the persistent decode slot so NextDist keeps
			// working after a multi-output extension.
			tmp, err := c.S.AllocEmbeds(c.Q, outs-1)
			if err != nil {
				return nil, err
			}
			defer c.S.DeallocEmbeds(c.Q, tmp)
			outEmb = append(append([]api.Embed(nil), tmp...), c.genEmb[0])
		default:
			// Probes must not clobber the frontier output.
			tmp, err := c.S.AllocEmbeds(c.Q, outs)
			if err != nil {
				return nil, err
			}
			defer c.S.DeallocEmbeds(c.Q, tmp)
			outEmb = tmp
		}
	}
	args := api.ForwardArgs{
		InputKv:   c.ctxPages(),
		InputEmb:  emb,
		OutputEmb: outEmb,
	}
	if keepKV {
		args.OutputKv = c.outPages(n)
	}
	if _, err := c.S.Forward(c.Q, args); err != nil {
		return nil, err
	}
	var dists []api.Dist
	if wantDists && outs > 0 {
		futs := make([]api.Future[api.Dist], outs)
		for i, eh := range outEmb {
			f, err := c.S.GetNextDist(c.Q, eh)
			if err != nil {
				return nil, err
			}
			futs[i] = f
		}
		dists, err = AwaitAll(futs)
		if err != nil {
			return nil, err
		}
	}
	if keepKV {
		c.slots += n
		c.pos += n
		c.Tokens = append(c.Tokens, toks...)
		if outs >= 1 {
			c.lastOut = c.genEmb[0]
			c.hasOut = true
		}
	}
	return dists, nil
}

// NextDist returns the next-token distribution after the last Fill or
// decode step.
func (c *Context) NextDist() (api.Dist, error) {
	if !c.hasOut {
		return api.Dist{}, ErrNoOutput
	}
	f, err := c.S.GetNextDist(c.Q, c.lastOut)
	if err != nil {
		return api.Dist{}, err
	}
	return f.Get()
}

// Append accepts token tok into the context (one decode step).
func (c *Context) Append(tok int) error {
	return c.FillTokens([]int{tok})
}

// ForwardTokens extends the context by toks in a single forward and
// returns the next-token distribution after every one of the last `outs`
// tokens — the verification primitive of speculative and Jacobi decoding:
// one kernel scores `outs` positions at once.
func (c *Context) ForwardTokens(toks []int, outs int) ([]api.Dist, error) {
	return c.extend(toks, true, outs, true)
}

// ProbeTokens runs toks through the model against the live context
// WITHOUT persisting KV or advancing the stream, returning dists for the
// last `outs` tokens (Jacobi iteration).
func (c *Context) ProbeTokens(toks []int, outs int) ([]api.Dist, error) {
	return c.extend(toks, false, outs, true)
}

// Truncate rolls the logical stream back to length n: the physical KV of
// the rejected tail is masked out (slots are not reclaimed — that is what
// ReleaseMaskedPages is for) and positions rewind so the next tokens
// overlay the rejected ones. The rollback half of speculative decoding.
func (c *Context) Truncate(n int) error {
	if n < 0 || n > c.pos {
		return fmt.Errorf("support: Truncate(%d) outside [0,%d]", n, c.pos)
	}
	drop := c.pos - n
	if drop == 0 {
		return nil
	}
	if err := c.MaskSlots(c.slots-drop, c.slots, true); err != nil {
		return err
	}
	c.pos = n
	c.Tokens = c.Tokens[:n]
	c.hasOut = false // outputs referred to the rejected tail
	return nil
}

// MaskSlots sets attention mask bits over physical slot range [from, to)
// (true hides them).
func (c *Context) MaskSlots(from, to int, masked bool) error {
	ps := c.Model.PageSize
	for p := 0; p < len(c.entries); p++ {
		if !c.entries[p].live {
			continue
		}
		lo, hi := p*ps, (p+1)*ps
		if hi <= from || lo >= to {
			continue
		}
		bits := make([]bool, ps)
		for i := 0; i < ps; i++ {
			slot := lo + i
			if slot >= from && slot < to {
				bits[i] = masked
			}
		}
		if _, err := c.S.MaskKvPage(c.Q, c.entries[p].h, bits); err != nil {
			return err
		}
	}
	return nil
}

// MaskRange masks token positions [from, to). It equals MaskSlots while
// the context has never been truncated (positions == slots), which holds
// for every masking application (sinks, windows, hierarchical attention,
// spec-drop).
func (c *Context) MaskRange(from, to int, masked bool) error {
	return c.MaskSlots(from, to, masked)
}

// ReleaseMaskedPages deallocates owned pages whose slots are entirely
// masked (e.g. dropped tool specs, evicted windows), returning the number
// of pages freed. Freed pages leave the attention input immediately; slot
// numbering is preserved.
func (c *Context) ReleaseMaskedPages(fullyMaskedRanges [][2]int) (int, error) {
	ps := c.Model.PageSize
	freed := 0
	var toFree []api.KvPage
	for p := 0; p < len(c.entries); p++ {
		if !c.entries[p].live || !c.entries[p].owned {
			continue
		}
		lo, hi := p*ps, (p+1)*ps
		if hi > c.slots {
			continue // tail page still receiving tokens
		}
		covered := false
		for _, r := range fullyMaskedRanges {
			if r[0] <= lo && hi <= r[1] {
				covered = true
				break
			}
		}
		if !covered {
			continue
		}
		c.entries[p].live = false
		toFree = append(toFree, c.entries[p].h)
		freed++
	}
	if len(toFree) > 0 {
		if err := c.S.DeallocKvPages(c.Q, toFree); err != nil {
			return freed, err
		}
	}
	return freed, nil
}

// GenOpts parameterizes Generate.
type GenOpts struct {
	MaxTokens int
	Sampler   Sampler
	// StopTokens ends generation when one is produced (it is not added).
	StopTokens []int
	// Stop, when non-nil, ends generation after any step where it returns
	// true over the tokens generated so far.
	Stop func(generated []int) bool
	// OnToken, when non-nil, observes each accepted token (tool-call
	// detection, §7.2 optimization #2).
	OnToken func(tok int)
}

// GenResult reports a Generate run.
type GenResult struct {
	Tokens []int
	Text   string
}

// Generate decodes autoregressively until a stop condition.
func (c *Context) Generate(opts GenOpts) (GenResult, error) {
	if opts.MaxTokens <= 0 {
		opts.MaxTokens = 64
	}
	sampler := opts.Sampler
	if sampler == nil {
		sampler = Greedy{}
	}
	var out []int
	for len(out) < opts.MaxTokens {
		dist, err := c.NextDist()
		if err != nil {
			return GenResult{}, err
		}
		tok := sampler.Next(dist)
		stop := false
		for _, st := range opts.StopTokens {
			if tok == st {
				stop = true
			}
		}
		if stop {
			break
		}
		out = append(out, tok)
		c.S.ReportOutputTokens(1)
		if opts.OnToken != nil {
			opts.OnToken(tok)
		}
		if err := c.Append(tok); err != nil {
			return GenResult{}, err
		}
		if opts.Stop != nil && opts.Stop(out) {
			break
		}
	}
	text, err := c.DecodeText(out)
	if err != nil {
		return GenResult{}, err
	}
	return GenResult{Tokens: out, Text: text}, nil
}

// DecodeText detokenizes ids through the model's vocabulary.
func (c *Context) DecodeText(ids []int) (string, error) {
	f, err := c.S.Detokenize(c.Q, ids)
	if err != nil {
		return "", err
	}
	return f.Get()
}

// Fork creates n children that share this context's pages zero-copy,
// except the page holding the last slot, which is copied per child so
// divergent continuations never write into shared state — the page-level
// sharing that powers tree search and beam search (R1). Children also
// inherit the parent's current output embedding (handles live in the same
// inferlet's address space), so their first NextDist needs no extra
// forward. The parent must outlive its children and must not Append while
// forks are active.
func (c *Context) Fork(n int) ([]*Context, error) {
	// The children's tail-page copies are issued on their own queues, so
	// the parent's pending prefill/decode writes must land first.
	if err := c.Sync(); err != nil {
		return nil, err
	}
	ps := c.Model.PageSize
	split := 0 // number of fully-shared pages
	tailTokens := 0
	if c.slots > 0 {
		split = (c.slots - 1) / ps
		tailTokens = c.slots - split*ps
	}
	children := make([]*Context, 0, n)
	for i := 0; i < n; i++ {
		child, err := NewContext(c.S, c.Model)
		if err != nil {
			return nil, err
		}
		for j := 0; j < split; j++ {
			child.entries = append(child.entries, pageEntry{h: c.entries[j].h, owned: false, live: c.entries[j].live})
		}
		if tailTokens > 0 {
			np, err := c.S.AllocKvPages(child.Q, 1)
			if err != nil {
				return nil, err
			}
			if _, err := c.S.CopyKvPage(child.Q, c.entries[split].h, np[0], 0, 0, tailTokens); err != nil {
				return nil, err
			}
			child.entries = append(child.entries, pageEntry{h: np[0], owned: true, live: true})
		}
		child.slots = c.slots
		child.pos = c.pos
		child.Tokens = append([]int(nil), c.Tokens...)
		child.lastOut = c.lastOut
		child.hasOut = c.hasOut
		children = append(children, child)
	}
	return children, nil
}

// Drop releases every owned live page and the decode slot; the context
// becomes unusable.
func (c *Context) Drop() error {
	var own []api.KvPage
	for _, e := range c.entries {
		if e.owned && e.live {
			own = append(own, e.h)
		}
	}
	if len(own) > 0 {
		if err := c.S.DeallocKvPages(c.Q, own); err != nil {
			return err
		}
	}
	c.entries = nil
	if c.genEmb != nil {
		if err := c.S.DeallocEmbeds(c.Q, c.genEmb); err != nil {
			return err
		}
		c.genEmb = nil
	}
	return nil
}

// Sync drains the context's command queue.
func (c *Context) Sync() error {
	f, err := c.S.Synchronize(c.Q)
	if err != nil {
		return err
	}
	_, err = f.Get()
	return err
}

// Export publishes the context's live pages under name. Exports should be
// page-aligned (Len a multiple of PageSize) so importers can extend them.
func (c *Context) Export(name string) error {
	if err := c.Sync(); err != nil {
		return err
	}
	return c.S.ExportKvPages(name, c.Pages())
}

// ImportContext maps an exported context: pages are shared, so the result
// must be treated as a read-only prefix (extend it; never mask it).
func ImportContext(s inferlet.Session, m api.ModelInfo, name string, tokens []int) (*Context, error) {
	c, err := NewContext(s, m)
	if err != nil {
		return nil, err
	}
	pages, err := s.ImportKvPages(name)
	if err != nil {
		return nil, err
	}
	for _, p := range pages {
		c.entries = append(c.entries, pageEntry{h: p, owned: false, live: true})
	}
	c.slots = len(tokens)
	c.pos = len(tokens)
	c.Tokens = append([]int(nil), tokens...)
	return c, nil
}
