// Reasoning example: the deliberate prompting strategies of §7.2 —
// Tree-of-Thought search with explicit branch pruning (forked KV pages
// freed the moment a branch loses) and Skeleton-of-Thought's parallel
// point expansion over one shared skeleton. Both run concurrently to show
// hundreds of API calls from different inferlets batching onto one GPU.
//
//	go run ./examples/reasoning
package main

import (
	"encoding/json"
	"fmt"
	"log"

	"pie"
	"pie/apps"
)

func main() {
	engine := pie.New(pie.Config{Seed: 11, Mode: pie.ModeFull})
	engine.MustRegister(apps.All()...)

	tot, _ := json.Marshal(apps.TreeParams{
		Prompt: "Use the numbers 4 7 8 8 to make 24. ",
		Depth:  3, Branch: 3, ThinkTokens: 12,
	})
	skot, _ := json.Marshal(apps.SkeletonParams{
		Prompt: "Write about the history of computing. ",
		Points: 4, SkeletonTokens: 12, ExpandTokens: 12,
	})
	rot, _ := json.Marshal(apps.RecursionParams{
		Prompt: "Compute 48*37+95*12 step by step. ",
		Depth:  2, Branch: 2, DivideTokens: 8, SolveTokens: 8,
	})

	err := engine.RunClient(func() {
		t0 := engine.Now()
		hTot, err := engine.Launch(pie.Spec("tot", string(tot)))
		if err != nil {
			log.Fatal(err)
		}
		hSkot, err := engine.Launch(pie.Spec("skot", string(skot)))
		if err != nil {
			log.Fatal(err)
		}
		hRot, err := engine.Launch(pie.Spec("rot", string(rot)))
		if err != nil {
			log.Fatal(err)
		}
		for _, h := range []struct {
			name   string
			handle *pie.Handle
		}{{"tree-of-thought", hTot}, {"skeleton-of-thought", hSkot}, {"recursion-of-thought", hRot}} {
			msg, _ := h.handle.Recv().Get()
			if err := h.handle.Wait(); err != nil {
				log.Fatalf("%s: %v", h.name, err)
			}
			_, ic, tok := h.handle.Stats()
			fmt.Printf("%-20s %3d output tokens, %4d inference calls -> %.48q\n", h.name, tok, ic, msg)
		}
		fmt.Printf("\nall three strategies finished in %v of virtual time\n", engine.Now()-t0)
	})
	if err != nil {
		log.Fatal(err)
	}
	st := engine.Stats()
	inUse, capacity := engine.PoolStats("llama-1b")
	fmt.Printf("engine: %d kernels, avg batch %.1f (cross-inferlet batching)\n", st.Kernels, st.AvgBatch)
	fmt.Printf("KV pages in use after completion: %d / %d (pruned branches freed their pages)\n", inUse, capacity)
}
