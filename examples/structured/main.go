// Structured-generation example: custom decode processes (R2) that no
// monolithic serving loop exposes — grammar-constrained decoding that
// turns even an untrained model into a valid-JSON emitter, and
// watermarked sampling with in-process detection.
//
//	go run ./examples/structured
package main

import (
	"encoding/json"
	"fmt"
	"log"

	"pie"
	"pie/apps"
)

func main() {
	engine := pie.New(pie.Config{Seed: 3, Mode: pie.ModeFull})
	engine.MustRegister(apps.All()...)

	ebnf, _ := json.Marshal(apps.EBNFParams{MaxTokens: 48})
	wm, _ := json.Marshal(apps.WatermarkParams{MaxTokens: 60, Delta: 6})

	err := engine.RunClient(func() {
		h, err := engine.Launch(pie.Spec("ebnf", string(ebnf)))
		if err != nil {
			log.Fatal(err)
		}
		out, _ := h.Recv().Get()
		if err := h.Wait(); err != nil {
			log.Fatal(err)
		}
		var v interface{}
		valid := json.Unmarshal([]byte(out), &v) == nil
		fmt.Printf("grammar-constrained output: %s\n", out)
		fmt.Printf("parses as JSON: %v (the model has RANDOM weights — the grammar mask does the work)\n\n", valid)

		h2, err := engine.Launch(pie.Spec("watermarking", string(wm)))
		if err != nil {
			log.Fatal(err)
		}
		marked, _ := h2.Recv().Get()
		if err := h2.Wait(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("watermarked output (z-score prefixed): %.70s...\n", marked)
		fmt.Println("z > 2 means the greenlist bias is statistically detectable.")
	})
	if err != nil {
		log.Fatal(err)
	}
}
