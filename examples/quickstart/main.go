// Quickstart: the paper's §4.2 examples end to end — the three-line
// support-library completion, and the same loop written against the raw
// fine-grained API (alloc/embed/forward/sample), on a full-fidelity
// engine with real (tiny-transformer) math.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"pie"
	"pie/inferlet"
	"pie/support"
)

func main() {
	engine := pie.New(pie.Config{Seed: 42, Mode: pie.ModeFull})

	// The high-level version: Context manages pages automatically (§6.3).
	engine.MustRegister(inferlet.Program{
		Name: "hello-simple", BinarySize: 64 << 10,
		Run: func(s inferlet.Session) error {
			ctx, err := support.NewContext(s, s.AvailableModels()[0])
			if err != nil {
				return err
			}
			if err := ctx.Fill("Hello, "); err != nil {
				return err
			}
			res, err := ctx.Generate(support.GenOpts{MaxTokens: 10})
			if err != nil {
				return err
			}
			s.Send(res.Text)
			return ctx.Sync()
		},
	})

	// The same loop with raw handles: negotiated capabilities, explicit
	// embeds, KV pages, forwards, and host-side greedy sampling (the
	// paper's §4.2 listing in the v2 capability idiom).
	engine.MustRegister(inferlet.Program{
		Name: "hello-raw", BinarySize: 129 << 10,
		Run: func(s inferlet.Session) error {
			m := s.AvailableModels()[0]
			q, err := s.Open(m.ID)
			if err != nil {
				return err
			}
			tok, _ := q.Tokenizer() // trait: tokenize
			alloc, _ := q.Alloc()   // trait: allocate
			text, _ := q.Text()     // trait: input_text
			fwd, _ := q.Forward()   // trait: forward
			sample, _ := q.Sample() // trait: output_text

			promF, _ := tok.Encode("Hello, ")
			prom, err := promF.Get()
			if err != nil {
				return err
			}
			tokLimit := len(prom) + 10

			promEmb, _ := alloc.Embeds(len(prom))
			genEmb, _ := alloc.Embeds(1)
			kv, _ := alloc.Pages((tokLimit + m.PageSize - 1) / m.PageSize)

			pos := make([]int, len(prom))
			for i := range pos {
				pos[i] = i
			}
			text.Embed(prom, pos, promEmb)
			fwd.Run(inferlet.Input(promEmb...), inferlet.AppendKv(kv...), inferlet.Output(genEmb...))

			var out []int
			for i := len(prom); i < tokLimit; i++ {
				distF, _ := sample.NextDist(genEmb[0])
				dist, err := distF.Get()
				if err != nil {
					return err
				}
				gen := dist.ArgMax()
				out = append(out, gen)
				s.ReportOutputTokens(1)
				text.Embed([]int{gen}, []int{i}, genEmb)
				fwd.Run(inferlet.ReadKv(kv...), inferlet.Input(genEmb...),
					inferlet.AppendKv(kv...), inferlet.Output(genEmb...))
			}
			textF, _ := tok.Decode(out)
			answer, err := textF.Get()
			if err != nil {
				return err
			}
			s.Send(answer)

			// One call drains the queue and reclaims every embed and page
			// allocated through it.
			return q.Close()
		},
	})

	err := engine.RunClient(func() {
		for _, name := range []string{"hello-simple", "hello-raw"} {
			t0 := engine.Now()
			h, err := engine.Launch(pie.Spec(name))
			if err != nil {
				log.Fatal(err)
			}
			msg, _ := h.Recv().Get()
			if err := h.Wait(); err != nil {
				log.Fatal(err)
			}
			fmt.Printf("%-12s -> %q  (virtual %v)\n", name, msg, engine.Now()-t0)
		}
	})
	if err != nil {
		log.Fatal(err)
	}
	st := engine.Stats()
	fmt.Printf("\nGPU kernels: %d  batches: %d  busy: %v\n", st.Kernels, st.Batches, st.GPUBusy)
	fmt.Println("Both programs print identical text: the support library is sugar over the raw API.")
}
