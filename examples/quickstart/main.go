// Quickstart: the paper's §4.2 examples end to end — the three-line
// support-library completion, and the same loop written against the raw
// fine-grained API (alloc/embed/forward/sample), on a full-fidelity
// engine with real (tiny-transformer) math.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"pie"
	"pie/api"
	"pie/inferlet"
	"pie/support"
)

func main() {
	engine := pie.New(pie.Config{Seed: 42, Mode: pie.ModeFull})

	// The high-level version: Context manages pages automatically (§6.3).
	engine.MustRegister(inferlet.Program{
		Name: "hello-simple", BinarySize: 64 << 10,
		Run: func(s inferlet.Session) error {
			ctx, err := support.NewContext(s, s.AvailableModels()[0])
			if err != nil {
				return err
			}
			if err := ctx.Fill("Hello, "); err != nil {
				return err
			}
			res, err := ctx.Generate(support.GenOpts{MaxTokens: 10})
			if err != nil {
				return err
			}
			s.Send(res.Text)
			return ctx.Sync()
		},
	})

	// The same loop with raw handles: explicit embeds, KV pages, forwards,
	// and host-side greedy sampling (the paper's §4.2 listing).
	engine.MustRegister(inferlet.Program{
		Name: "hello-raw", BinarySize: 129 << 10,
		Run: func(s inferlet.Session) error {
			m := s.AvailableModels()[0]
			q, err := s.CreateQueue(m.ID)
			if err != nil {
				return err
			}
			promF, _ := s.Tokenize(q, "Hello, ")
			prom, err := promF.Get()
			if err != nil {
				return err
			}
			tokLimit := len(prom) + 10

			promEmb, _ := s.AllocEmbeds(q, len(prom))
			genEmb, _ := s.AllocEmbeds(q, 1)
			kv, _ := s.AllocKvPages(q, (tokLimit+m.PageSize-1)/m.PageSize)

			pos := make([]int, len(prom))
			for i := range pos {
				pos[i] = i
			}
			s.EmbedText(q, prom, pos, promEmb)
			s.Forward(q, api.ForwardArgs{InputEmb: promEmb, OutputKv: kv, OutputEmb: genEmb})

			var out []int
			for i := len(prom); i < tokLimit; i++ {
				distF, _ := s.GetNextDist(q, genEmb[0])
				dist, err := distF.Get()
				if err != nil {
					return err
				}
				gen := dist.ArgMax()
				out = append(out, gen)
				s.ReportOutputTokens(1)
				s.EmbedText(q, []int{gen}, []int{i}, genEmb)
				s.Forward(q, api.ForwardArgs{InputKv: kv, InputEmb: genEmb, OutputKv: kv, OutputEmb: genEmb})
			}
			textF, _ := s.Detokenize(q, out)
			text, err := textF.Get()
			if err != nil {
				return err
			}
			s.Send(text)

			s.DeallocEmbeds(q, promEmb)
			s.DeallocEmbeds(q, genEmb)
			s.DeallocKvPages(q, kv)
			syncF, _ := s.Synchronize(q)
			_, err = syncF.Get()
			return err
		},
	})

	err := engine.RunClient(func() {
		for _, name := range []string{"hello-simple", "hello-raw"} {
			t0 := engine.Now()
			h, err := engine.Launch(name)
			if err != nil {
				log.Fatal(err)
			}
			msg, _ := h.Recv().Get()
			if err := h.Wait(); err != nil {
				log.Fatal(err)
			}
			fmt.Printf("%-12s -> %q  (virtual %v)\n", name, msg, engine.Now()-t0)
		}
	})
	if err != nil {
		log.Fatal(err)
	}
	st := engine.Stats()
	fmt.Printf("\nGPU kernels: %d  batches: %d  busy: %v\n", st.Kernels, st.Batches, st.GPUBusy)
	fmt.Println("Both programs print identical text: the support library is sugar over the raw API.")
}
