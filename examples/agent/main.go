// Agent example: a ReACT agent whose entire think→act→observe loop runs
// inside the serving system (§7.1). Tool calls are issued from the
// inferlet — no client round trips — and the KV cache survives across
// them, which is the paper's R3 requirement in action. A second run shows
// the Fig. 7 function-calling agent with all three application-level
// optimizations stacked.
//
//	go run ./examples/agent
package main

import (
	"encoding/json"
	"fmt"
	"log"
	"time"

	"pie"
	"pie/apps"
)

func main() {
	engine := pie.New(pie.Config{Seed: 7, Mode: pie.ModeTiming})
	engine.MustRegister(apps.All()...)
	engine.RegisterTool("search.api", 40*time.Millisecond, func(req string) string {
		return `{"answer":"Paris, 21C"}`
	})
	engine.RegisterTool("fn.api", 30*time.Millisecond, func(req string) string { return "ok" })

	react, _ := json.Marshal(apps.AgentParams{
		Task:  "Find the weather in the capital of France. ",
		Steps: 8, ThinkTokens: 24, ObsTokens: 16, FinalTokens: 24,
	})
	fncall, _ := json.Marshal(apps.FnCallParams{
		NumAPIs: 8, HotAPIs: 2, SpecTokens: 64, Calls: 8, ThinkTokens: 12,
		OptCache: true, OptAsync: true, OptMask: true,
	})

	err := engine.RunClient(func() {
		t0 := engine.Now()
		h, err := engine.Launch(pie.Spec("agent_react", string(react)))
		if err != nil {
			log.Fatal(err)
		}
		answer, _ := h.Recv().Get()
		if err := h.Wait(); err != nil {
			log.Fatal(err)
		}
		cc, ic, tok := h.Stats()
		fmt.Printf("ReACT agent finished in %v virtual time\n", engine.Now()-t0)
		fmt.Printf("  answer: %.60s...\n", answer)
		fmt.Printf("  8 tool calls, zero client round trips, KV retained throughout\n")
		fmt.Printf("  control calls: %d  inference calls: %d  output tokens: %d\n\n", cc, ic, tok)

		t0 = engine.Now()
		h2, err := engine.Launch(pie.Spec("fncall_agent", string(fncall)))
		if err != nil {
			log.Fatal(err)
		}
		h2.Recv().Get()
		if err := h2.Wait(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("Function-calling agent (opts #1+#2+#3) finished in %v\n", engine.Now()-t0)
		fmt.Printf("  #1 hot API-spec KV imported from the export registry\n")
		fmt.Printf("  #2 tool calls fired without awaiting\n")
		fmt.Printf("  #3 single-use spec KV masked and freed mid-flight\n")
	})
	if err != nil {
		log.Fatal(err)
	}
	st := engine.Stats()
	fmt.Printf("\nengine: %d kernels, %d tool calls, avg batch %.1f\n", st.Kernels, st.ToolCalls, st.AvgBatch)
}
