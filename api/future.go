package api

// Future combinators. Inferlets are single-threaded and event-driven;
// before these existed every program hand-rolled "issue N calls, Get them
// in order" loops. The combinators compose futures without blocking until
// the composed value is demanded:
//
//	dists, err := api.All(f1, f2, f3).Get()        // await everything
//	first, err := api.Any(toolA, toolB).Get()      // first completion wins
//	text := api.Then(tokF, decodeFn)               // transform lazily
//
// A combinator future is owned by the inferlet that created it and must
// not be shared across sim processes.

// Subscriber is the optional interface of runtime futures that can invoke
// a callback when they complete. Subscribe runs fn exactly once — either
// immediately, when the future is already complete, or at completion time.
// Every future returned by a Pie API call implements it.
type Subscriber interface {
	Subscribe(fn func())
}

// Relay is a one-shot completion latch on the runtime's virtual clock:
// Any parks the calling inferlet on a relay fired by the first completion.
type Relay interface {
	// Fire completes the relay; extra calls are no-ops.
	Fire()
	// Await blocks the calling process until the relay fires.
	Await() error
}

// RelayMaker is the optional interface of runtime futures that can mint a
// Relay on their own clock. Every future returned by a Pie API call
// implements it.
type RelayMaker interface {
	MakeRelay() Relay
}

// trySubscribe registers fn on f when f supports completion callbacks;
// it reports whether fn is guaranteed to run (either it already did —
// f was complete — or it will at completion time).
func trySubscribe[T any](f Future[T], fn func()) bool {
	if s, ok := f.(Subscriber); ok {
		s.Subscribe(fn)
		return true
	}
	if f.Done() {
		fn()
		return true
	}
	return false
}

// relayOf mints a relay from f when it (or a future it wraps) can.
func relayOf[T any](f Future[T]) Relay {
	if rm, ok := f.(RelayMaker); ok {
		return rm.MakeRelay()
	}
	return nil
}

// All composes futures into one that resolves with every value, in
// argument order, or fails with the first error encountered.
func All[T any](fs ...Future[T]) Future[[]T] {
	return &allFuture[T]{fs: fs}
}

type allFuture[T any] struct {
	fs   []Future[T]
	done bool
	vals []T
	err  error
}

func (a *allFuture[T]) Done() bool {
	if a.done {
		return true
	}
	for _, f := range a.fs {
		if !f.Done() {
			return false
		}
	}
	return true
}

func (a *allFuture[T]) Get() ([]T, error) {
	if a.done {
		return a.vals, a.err
	}
	vals := make([]T, len(a.fs))
	for i, f := range a.fs {
		v, err := f.Get()
		if err != nil {
			a.done, a.err = true, err
			return nil, err
		}
		vals[i] = v
	}
	a.done, a.vals = true, vals
	return vals, nil
}

// Subscribe implements Subscriber by delegation: fn runs once every
// underlying future has completed (combinators nest inside Any).
func (a *allFuture[T]) Subscribe(fn func()) {
	remaining := len(a.fs)
	if remaining == 0 {
		fn()
		return
	}
	// Single-threaded inferlet runtime: no atomics needed.
	countdown := func() {
		remaining--
		if remaining == 0 {
			fn()
		}
	}
	for _, f := range a.fs {
		trySubscribe(f, countdown)
	}
}

// MakeRelay implements RelayMaker by delegating to the first underlying
// future that can mint one; nil when none can.
func (a *allFuture[T]) MakeRelay() Relay {
	for _, f := range a.fs {
		if r := relayOf(f); r != nil {
			return r
		}
	}
	return nil
}

// Any composes futures into one that resolves with the value (or error)
// of the first to complete. Ties at the same virtual instant break in
// argument order. Any panics when called with no futures.
func Any[T any](fs ...Future[T]) Future[T] {
	if len(fs) == 0 {
		panic("api: Any of zero futures")
	}
	return &anyFuture[T]{fs: fs}
}

type anyFuture[T any] struct {
	fs []Future[T]
}

func (a *anyFuture[T]) winner() Future[T] {
	for _, f := range a.fs {
		if f.Done() {
			return f
		}
	}
	return nil
}

func (a *anyFuture[T]) Done() bool { return a.winner() != nil }

func (a *anyFuture[T]) Get() (T, error) {
	if w := a.winner(); w != nil {
		return w.Get()
	}
	// Park on a relay fired by whichever future completes first.
	// Combinator futures delegate Subscribe/MakeRelay to the runtime
	// futures they wrap, so nesting (Any of Then of All ...) races
	// correctly too.
	var relay Relay
	for _, f := range a.fs {
		if relay = relayOf(f); relay != nil {
			break
		}
	}
	armed := false
	if relay != nil {
		for _, f := range a.fs {
			if trySubscribe(f, relay.Fire) {
				armed = true
			}
		}
	}
	if relay == nil || !armed {
		// Degraded mode for non-runtime futures (tests, fakes): block on
		// the first future, then report whichever is done.
		_, _ = a.fs[0].Get()
		return a.winner().Get()
	}
	_ = relay.Await()
	if w := a.winner(); w != nil {
		return w.Get()
	}
	// A subscription fired without a visible winner (possible only with
	// exotic third-party futures): fall back to blocking in order.
	_, _ = a.fs[0].Get()
	return a.winner().Get()
}

// Subscribe implements Subscriber by delegation: fn runs once the first
// underlying future completes (Fire-style callbacks are idempotent at
// the relay, so multiple completions are harmless).
func (a *anyFuture[T]) Subscribe(fn func()) {
	for _, f := range a.fs {
		trySubscribe(f, fn)
	}
}

// MakeRelay implements RelayMaker by delegating to the first underlying
// future that can mint one; nil when none can.
func (a *anyFuture[T]) MakeRelay() Relay {
	for _, f := range a.fs {
		if r := relayOf(f); r != nil {
			return r
		}
	}
	return nil
}

// Then derives a future that applies fn to f's value once it resolves.
// fn runs at most once, in the process that first Gets the derived
// future; errors short-circuit.
func Then[T, U any](f Future[T], fn func(T) (U, error)) Future[U] {
	return &thenFuture[T, U]{f: f, fn: fn}
}

type thenFuture[T, U any] struct {
	f    Future[T]
	fn   func(T) (U, error)
	done bool
	val  U
	err  error
}

func (t *thenFuture[T, U]) Done() bool { return t.done || t.f.Done() }

func (t *thenFuture[T, U]) Get() (U, error) {
	if t.done {
		return t.val, t.err
	}
	v, err := t.f.Get()
	if err != nil {
		t.done, t.err = true, err
		return t.val, err
	}
	t.val, t.err = t.fn(v)
	t.done = true
	return t.val, t.err
}

// Subscribe implements Subscriber by delegating to the wrapped future
// (the transform is lazy; completion of the source IS completion here).
func (t *thenFuture[T, U]) Subscribe(fn func()) { trySubscribe(t.f, fn) }

// MakeRelay implements RelayMaker by delegation; nil when the wrapped
// future cannot mint one.
func (t *thenFuture[T, U]) MakeRelay() Relay { return relayOf(t.f) }

// Map composes All and a per-element transform: the derived future
// resolves with fn applied to every input value, in order.
func Map[T, U any](fs []Future[T], fn func(T) (U, error)) Future[[]U] {
	return Then(All(fs...), func(vals []T) ([]U, error) {
		out := make([]U, len(vals))
		for i, v := range vals {
			u, err := fn(v)
			if err != nil {
				return nil, err
			}
			out[i] = u
		}
		return out, nil
	})
}
