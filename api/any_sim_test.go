package api_test

// Any over runtime (sim) futures: the relay-parking path, races decided
// by virtual time, and ties where several futures complete on the same
// tick. External test package: internal/sim imports api, so these cannot
// live inside package api.

import (
	"testing"
	"time"

	"pie/api"
	"pie/internal/sim"
)

func TestAnySameTickTieBreaksInArgumentOrder(t *testing.T) {
	clock := sim.NewClock()
	f1 := sim.NewFuture[string](clock)
	f2 := sim.NewFuture[string](clock)
	var got string
	clock.Go("resolver", func() {
		clock.Sleep(time.Millisecond)
		// Both futures complete at the same virtual instant, before the
		// waiter can observe either: the tie must break in argument
		// order, not completion-callback order.
		f2.Resolve("second")
		f1.Resolve("first")
	})
	clock.Go("waiter", func() {
		v, err := api.Any[string](f1, f2).Get()
		if err != nil {
			t.Errorf("Any.Get: %v", err)
		}
		got = v
	})
	if err := clock.Run(); err != nil {
		t.Fatal(err)
	}
	if got != "first" {
		t.Fatalf("same-tick Any winner = %q, want argument-order %q", got, "first")
	}
}

func TestAnyLaterArgumentCanWinByTime(t *testing.T) {
	clock := sim.NewClock()
	slow := sim.NewFuture[string](clock)
	fast := sim.NewFuture[string](clock)
	var got string
	var elapsed time.Duration
	clock.Go("slow", func() {
		clock.Sleep(10 * time.Millisecond)
		slow.Resolve("slow")
	})
	clock.Go("fast", func() {
		clock.Sleep(time.Millisecond)
		fast.Resolve("fast")
	})
	clock.Go("waiter", func() {
		v, _ := api.Any[string](slow, fast).Get()
		got = v
		elapsed = clock.Now()
	})
	if err := clock.Run(); err != nil {
		t.Fatal(err)
	}
	if got != "fast" {
		t.Fatalf("Any winner = %q, want %q", got, "fast")
	}
	if elapsed >= 10*time.Millisecond {
		t.Fatalf("Any waited %v: it blocked on the slow future instead of parking on the relay", elapsed)
	}
}

func TestAnyOverAlreadyResolvedRuntimeFuture(t *testing.T) {
	clock := sim.NewClock()
	done := sim.Resolved(clock, "done")
	pending := sim.NewFuture[string](clock)
	var got string
	clock.Go("waiter", func() {
		v, err := api.Any[string](pending, done).Get()
		if err != nil {
			t.Errorf("Any.Get: %v", err)
		}
		got = v
		// Unblock the run: nothing ever resolves `pending`.
		pending.Resolve("late")
	})
	if err := clock.Run(); err != nil {
		t.Fatal(err)
	}
	if got != "done" {
		t.Fatalf("Any over resolved future = %q, want %q", got, "done")
	}
}

func TestAnyOfNestedCombinatorsParks(t *testing.T) {
	clock := sim.NewClock()
	a := sim.NewFuture[int](clock)
	b := sim.NewFuture[int](clock)
	c := sim.NewFuture[int](clock)
	var got []int
	clock.Go("resolvers", func() {
		clock.Sleep(time.Millisecond)
		a.Resolve(1)
		b.Resolve(2)
		clock.Sleep(time.Hour) // c never resolves in useful time
		c.Resolve(3)
	})
	clock.Go("waiter", func() {
		pair := api.All[int](a, b)
		single := api.All[int](c)
		v, err := api.Any[[]int](pair, single).Get()
		if err != nil {
			t.Errorf("Any.Get: %v", err)
		}
		got = v
	})
	if err := clock.Run(); err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Fatalf("nested Any winner = %v, want [1 2]", got)
	}
}
