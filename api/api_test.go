package api

import (
	"errors"
	"testing"
)

func TestSupertraitClosureChain(t *testing.T) {
	// A model declaring only the fused trait transitively implements
	// forward (fused ⇒ forward) and allocate (forward ⇒ allocate), plus
	// output_text (fused ⇒ output_text).
	m := ModelInfo{ID: "fused-only", Traits: []Trait{TraitFused}}
	for _, want := range []Trait{TraitFused, TraitForward, TraitAllocate, TraitOutputText} {
		if !m.HasTraitClosure(want) {
			t.Errorf("fused-only model: HasTraitClosure(%s) = false, want true", want)
		}
	}
	for _, absent := range []Trait{TraitInputText, TraitTokenize, TraitInputImage, TraitAdapter, TraitCore} {
		if m.HasTraitClosure(absent) {
			t.Errorf("fused-only model: HasTraitClosure(%s) = true, want false", absent)
		}
	}
	// HasTrait stays a direct-declaration check.
	if m.HasTrait(TraitForward) {
		t.Error("HasTrait(forward) must not walk the closure")
	}
}

func TestSupertraitClosureTokenizeChain(t *testing.T) {
	// tokenize ⇒ input_text ⇒ {allocate, forward} ⇒ allocate.
	m := ModelInfo{ID: "tok-only", Traits: []Trait{TraitTokenize}}
	for _, want := range []Trait{TraitTokenize, TraitInputText, TraitForward, TraitAllocate} {
		if !m.HasTraitClosure(want) {
			t.Errorf("tok-only model: HasTraitClosure(%s) = false, want true", want)
		}
	}
	if m.HasTraitClosure(TraitOutputText) {
		t.Error("tok-only model must not imply output_text")
	}
}

// fakeFuture is a pre-completed or never-completing Future for combinator
// unit tests (runtime futures are covered by the engine-level tests).
type fakeFuture[T any] struct {
	done bool
	val  T
	err  error
}

func (f *fakeFuture[T]) Get() (T, error) { return f.val, f.err }
func (f *fakeFuture[T]) Done() bool      { return f.done }

func TestAllResolvesInOrder(t *testing.T) {
	f := All[int](
		&fakeFuture[int]{done: true, val: 1},
		&fakeFuture[int]{done: true, val: 2},
		&fakeFuture[int]{done: true, val: 3},
	)
	if !f.Done() {
		t.Fatal("All of resolved futures not Done")
	}
	vals, err := f.Get()
	if err != nil || len(vals) != 3 || vals[0] != 1 || vals[2] != 3 {
		t.Fatalf("All.Get() = %v, %v", vals, err)
	}
}

func TestAllPropagatesError(t *testing.T) {
	boom := errors.New("boom")
	f := All[int](
		&fakeFuture[int]{done: true, val: 1},
		&fakeFuture[int]{done: true, err: boom},
	)
	if _, err := f.Get(); !errors.Is(err, boom) {
		t.Fatalf("All.Get() err = %v, want boom", err)
	}
	// Cached on re-Get.
	if _, err := f.Get(); !errors.Is(err, boom) {
		t.Fatalf("second All.Get() err = %v, want boom", err)
	}
}

func TestAnyPicksFirstDone(t *testing.T) {
	f := Any[string](
		&fakeFuture[string]{done: false},
		&fakeFuture[string]{done: true, val: "winner"},
	)
	if !f.Done() {
		t.Fatal("Any with a done future not Done")
	}
	v, err := f.Get()
	if err != nil || v != "winner" {
		t.Fatalf("Any.Get() = %q, %v", v, err)
	}
}

func TestThenTransformsOnce(t *testing.T) {
	calls := 0
	f := Then[int, int](&fakeFuture[int]{done: true, val: 21}, func(v int) (int, error) {
		calls++
		return v * 2, nil
	})
	for i := 0; i < 2; i++ {
		v, err := f.Get()
		if err != nil || v != 42 {
			t.Fatalf("Then.Get() = %d, %v", v, err)
		}
	}
	if calls != 1 {
		t.Fatalf("transform ran %d times, want 1", calls)
	}
}

func TestMap(t *testing.T) {
	fs := []Future[int]{
		&fakeFuture[int]{done: true, val: 1},
		&fakeFuture[int]{done: true, val: 2},
	}
	vals, err := Map(fs, func(v int) (int, error) { return v + 10, nil }).Get()
	if err != nil || len(vals) != 2 || vals[0] != 11 || vals[1] != 12 {
		t.Fatalf("Map.Get() = %v, %v", vals, err)
	}
}
