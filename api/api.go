// Package api defines the public vocabulary of the Pie serving system:
// resource handles, model traits, token distributions, and the future type
// returned by asynchronous inferlet API calls.
//
// The design follows §4 of the paper: Pie views an LLM forward pass as a
// three-stage pipeline (embed → forward → sample) over two explicitly
// managed resources — Embed (one token's embedding slot) and KvPage (a
// fixed-capacity page of KV-cache entries, PagedAttention-style). Handles
// are opaque pointers into a virtual, per-inferlet resource address space;
// the control layer owns the virtual→physical mapping.
package api

import (
	"errors"
	"time"
)

// Embed is a handle to a single token-embedding slot.
type Embed uint64

// KvPage is a handle to one KV-cache page holding up to PageSize tokens.
type KvPage uint64

// Queue identifies a command queue. All inference-layer API calls are
// issued against a queue; the batch scheduler uses queues to infer
// dependencies and priorities (§5.2).
type Queue uint64

// ModelID names a servable model (e.g. "llama-1b").
type ModelID string

// Trait names a capability set a model implements (§4.4). Traits form a
// DAG via supertraits; inferlets query them at runtime to adapt.
type Trait string

// The traits defined by the paper (Table 1) plus the fused-operation
// extension trait used for the Table 3 opportunity-cost ablation.
const (
	TraitCore       Trait = "core"        // runtime APIs: args, messaging, queues
	TraitAllocate   Trait = "allocate"    // embed/kvpage allocation, export/import
	TraitForward    Trait = "forward"     // forward pass + KV masking (supertrait: allocate)
	TraitInputText  Trait = "input_text"  // embed_txt (supertraits: allocate, forward)
	TraitInputImage Trait = "input_image" // embed_img (supertraits: allocate, forward)
	TraitTokenize   Trait = "tokenize"    // tokenize/detokenize/vocab (supertrait: input_text)
	TraitOutputText Trait = "output_text" // get_next_dist (supertrait: allocate)
	TraitAdapter    Trait = "adapter"     // forward_with_adapter (supertrait: forward)
	TraitFused      Trait = "fused"       // forward_with_sampling — monolithic-style fused ops
)

// Supertraits returns the traits a trait directly depends on.
func Supertraits(t Trait) []Trait {
	switch t {
	case TraitForward:
		return []Trait{TraitAllocate}
	case TraitInputText, TraitInputImage:
		return []Trait{TraitAllocate, TraitForward}
	case TraitTokenize:
		return []Trait{TraitInputText}
	case TraitOutputText:
		return []Trait{TraitAllocate}
	case TraitAdapter:
		return []Trait{TraitForward}
	case TraitFused:
		return []Trait{TraitForward, TraitOutputText}
	}
	return nil
}

// ModelInfo describes a servable model as reported by available_models.
type ModelInfo struct {
	ID        ModelID
	Params    string // human-readable parameter count, e.g. "8B"
	PageSize  int    // tokens per KvPage
	VocabSize int
	Traits    []Trait
	Adapters  []string // registered LoRA-style adapters
}

// HasTrait reports whether the model declares t directly. Most callers
// want HasTraitClosure: a declared trait implies its transitive
// supertraits (a model cannot implement `fused` without `forward` and
// `allocate`), and capability negotiation walks that closure.
func (m ModelInfo) HasTrait(t Trait) bool {
	for _, x := range m.Traits {
		if x == t {
			return true
		}
	}
	return false
}

// HasTraitClosure reports whether the model implements t, either by
// declaring it or because a declared trait transitively requires it
// through the Supertraits DAG. This is the check capability negotiation
// uses: e.g. a model declaring only TraitFused still satisfies
// TraitForward and TraitAllocate.
func (m ModelInfo) HasTraitClosure(t Trait) bool {
	seen := make(map[Trait]bool, len(m.Traits)*2)
	stack := append([]Trait(nil), m.Traits...)
	for len(stack) > 0 {
		x := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if x == t {
			return true
		}
		if seen[x] {
			continue
		}
		seen[x] = true
		stack = append(stack, Supertraits(x)...)
	}
	return false
}

// Dist is a next-token probability distribution truncated to the top-K
// vocabulary entries (§4.2: Pie truncates to bound transfer cost; K is
// configurable, default 256). Tokens are ordered by descending probability.
type Dist struct {
	Tokens []int
	Probs  []float32
}

// ArgMax returns the most probable token. It panics on an empty Dist.
func (d Dist) ArgMax() int {
	if len(d.Tokens) == 0 {
		panic("api: ArgMax of empty Dist")
	}
	return d.Tokens[0]
}

// Prob returns the probability mass of token id inside the truncated
// distribution, or 0 if id was truncated away.
func (d Dist) Prob(id int) float32 {
	for i, t := range d.Tokens {
		if t == id {
			return d.Probs[i]
		}
	}
	return 0
}

// Future is the completion handle returned by asynchronous API calls.
// Get blocks the calling inferlet (cooperatively — the runtime keeps
// serving other inferlets) until the result is available.
type Future[T any] interface {
	Get() (T, error)
	Done() bool
}

// ForwardArgs bundles the arguments of the forward API (§4.2).
//
// The call reads attention context from InputKv (respecting token-level
// mask bits), consumes InputEmb (each slot carries an explicit sequence
// position assigned by embed_txt), appends the new tokens' KV entries to
// OutputKv if non-empty, and writes the transformer outputs of the last
// len(OutputEmb) input tokens into OutputEmb.
//
// Mask, when non-nil, is an explicit boolean attention matrix with one row
// per input embedding and one column per context token followed by one
// column per input embedding; true admits attention. When nil, a causal
// mask is inferred from sequence positions.
type ForwardArgs struct {
	InputKv   []KvPage
	InputEmb  []Embed
	OutputKv  []KvPage
	OutputEmb []Embed
	Mask      [][]bool
	Adapter   string // non-empty selects forward_with_adapter
}

// SampleSpec configures fused on-GPU sampling (forward_with_sampling,
// TraitFused). Temperature <= 0 selects greedy decoding.
type SampleSpec struct {
	TopK        int
	Temperature float32
	Seed        uint64
}

// Message is a user↔inferlet or inferlet↔inferlet payload.
type Message struct {
	From string
	Body string
}

// ServiceClass is a named service-quality contract for launches. Classes
// are registered with the engine (pie.Config.Classes) and referenced by
// name from LaunchSpecs and program manifests; the cluster's scaling loop
// tracks per-class SLO attainment from live latency samples, and the
// admission layer may degrade (rather than shed) launches of Degradable
// classes near saturation.
type ServiceClass struct {
	// Name keys the class; LaunchSpec.Class and Manifest.Class reference it.
	Name string
	// TTFTTarget bounds time-to-first-token: launch to the first completed
	// forward pass. Zero means no TTFT objective.
	TTFTTarget time.Duration
	// ITLTarget bounds inter-token latency: the gap between successive
	// completed forward passes of one instance. Zero means no ITL objective.
	ITLTarget time.Duration
	// MinTokensPerSec is an advisory throughput objective (reported, not
	// yet enforced by the scaler).
	MinTokensPerSec float64
	// Priority seeds the batch-scheduler priority of launches in this class
	// whose LaunchSpec leaves Priority zero. Negative marks best-effort
	// traffic eligible for hard shedding.
	Priority int
	// Degradable opts launches of this class into graceful degradation:
	// near saturation they are admitted with a shorter output cap and a
	// cheaper model variant (trait-negotiated) instead of being shed.
	Degradable bool
}

// Errors shared across layers.
var (
	ErrNoSuchModel    = errors.New("pie: no such model")
	ErrNoSuchTrait    = errors.New("pie: model does not implement trait")
	ErrBadHandle      = errors.New("pie: invalid or foreign resource handle")
	ErrOutOfResources = errors.New("pie: resource pool exhausted")
	ErrTerminated     = errors.New("pie: inferlet terminated by resource policy")
	ErrNoSuchExport   = errors.New("pie: no exported resource with that name")
	ErrBadArgument    = errors.New("pie: invalid API argument")
	ErrQueueClosed    = errors.New("pie: command queue closed")

	// Program-lifecycle errors (deployment API v2).

	// ErrNoSuchProgram reports a launch or lookup of a program (or
	// program@version) absent from the registry.
	ErrNoSuchProgram = errors.New("pie: no such program")
	// ErrUnsatisfiedManifest reports a program manifest whose requirements
	// (models, traits, limits, version syntax) the serving catalog cannot
	// satisfy. It is raised at register and launch time, never from inside
	// a running inferlet.
	ErrUnsatisfiedManifest = errors.New("pie: program manifest unsatisfied by catalog")
	// ErrAborted reports an inferlet cancelled through its launch handle.
	ErrAborted = errors.New("pie: inferlet aborted by client")
	// ErrDeadlineExceeded reports an inferlet that outlived its launch or
	// manifest deadline and was reclaimed.
	ErrDeadlineExceeded = errors.New("pie: inferlet deadline exceeded")
	// ErrLimitExceeded reports an API call that would exceed a resource
	// limit declared in the program's manifest.
	ErrLimitExceeded = errors.New("pie: manifest resource limit exceeded")

	// Fault-tolerance errors (cluster health, retry, and admission).

	// ErrReplicaLost reports work stranded on a replica the cluster
	// declared dead: in-flight inferlets are aborted with it (and requeued
	// when the launch carries a retry policy), and waiters on its exports
	// see it instead of hanging.
	ErrReplicaLost = errors.New("pie: replica lost")
	// ErrOverloaded reports a best-effort launch shed by the saturation
	// guard: aggregate KV or queue utilization crossed the configured
	// watermark, so admission preserves goodput for high-priority traffic.
	ErrOverloaded = errors.New("pie: cluster overloaded, best-effort launch shed")
	// ErrTransientFault reports an injected or spurious per-call failure
	// that is safe to retry (fault-injection plans surface it).
	ErrTransientFault = errors.New("pie: transient fault")
	// ErrRetryBudgetExhausted reports a retried launch that ran out of its
	// RetryPolicy backoff budget before any attempt succeeded.
	ErrRetryBudgetExhausted = errors.New("pie: retry budget exhausted")

	// ErrNoSuchClass reports a launch or manifest referencing a service
	// class absent from the engine's registry (Config.Classes).
	ErrNoSuchClass = errors.New("pie: no such service class")

	// ErrNoDecodeCapacity reports a prefill/decode handoff that found no
	// decode-eligible replica to receive the session's KV pages: the
	// session keeps decoding on its prefill replica and the denial is
	// counted (disaggregated pools, internal/cluster).
	ErrNoDecodeCapacity = errors.New("pie: no decode-eligible replica for KV handoff")
)
