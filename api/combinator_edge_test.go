package api

// Combinator edge cases left open by the v2 API redesign: empty input
// slices, already-completed futures, and error paths. Same-tick races of
// runtime futures are covered in any_sim_test.go (external test package,
// since internal/sim imports api).

import (
	"errors"
	"testing"
)

func TestAllEmpty(t *testing.T) {
	f := All[int]()
	if !f.Done() {
		t.Fatal("All() of no futures must be Done immediately")
	}
	vals, err := f.Get()
	if err != nil || len(vals) != 0 {
		t.Fatalf("All().Get() = %v, %v; want empty, nil", vals, err)
	}
	// Subscribe on the empty composite fires immediately (Any nests
	// combinators and relies on this).
	fired := false
	f.(Subscriber).Subscribe(func() { fired = true })
	if !fired {
		t.Fatal("Subscribe on empty All did not fire")
	}
}

func TestAnyZeroFuturesPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Any() of no futures must panic")
		}
	}()
	Any[int]()
}

func TestAnyAllAlreadyCompletedTieBreaksInArgumentOrder(t *testing.T) {
	f := Any[string](
		&fakeFuture[string]{done: true, val: "first"},
		&fakeFuture[string]{done: true, val: "second"},
	)
	if v, err := f.Get(); err != nil || v != "first" {
		t.Fatalf("Any over completed futures = %q, %v; want argument-order winner", v, err)
	}
}

func TestAnyPropagatesWinnerError(t *testing.T) {
	boom := errors.New("boom")
	f := Any[int](
		&fakeFuture[int]{done: false},
		&fakeFuture[int]{done: true, err: boom},
	)
	if _, err := f.Get(); !errors.Is(err, boom) {
		t.Fatalf("Any.Get() err = %v, want boom", err)
	}
}

func TestThenOnFailedSourceSkipsTransform(t *testing.T) {
	boom := errors.New("boom")
	calls := 0
	f := Then[int, int](&fakeFuture[int]{done: true, err: boom}, func(v int) (int, error) {
		calls++
		return v, nil
	})
	if _, err := f.Get(); !errors.Is(err, boom) {
		t.Fatalf("Then.Get() err = %v, want boom", err)
	}
	if calls != 0 {
		t.Fatal("transform ran on a failed source")
	}
	// The error is cached, not re-derived.
	if _, err := f.Get(); !errors.Is(err, boom) {
		t.Fatal("second Get lost the cached error")
	}
}

func TestThenOnCompletedSourceIsDone(t *testing.T) {
	f := Then[int, string](&fakeFuture[int]{done: true, val: 7}, func(v int) (string, error) {
		return "x", nil
	})
	if !f.Done() {
		t.Fatal("Then over a completed source must report Done before Get")
	}
}

func TestMapEmpty(t *testing.T) {
	f := Map(nil, func(v int) (int, error) { return v, nil })
	if !f.Done() {
		t.Fatal("Map of no futures must be Done")
	}
	vals, err := f.Get()
	if err != nil || len(vals) != 0 {
		t.Fatalf("Map(nil).Get() = %v, %v; want empty, nil", vals, err)
	}
}

func TestMapPropagatesTransformError(t *testing.T) {
	boom := errors.New("boom")
	fs := []Future[int]{
		&fakeFuture[int]{done: true, val: 1},
		&fakeFuture[int]{done: true, val: 2},
	}
	f := Map(fs, func(v int) (int, error) {
		if v == 2 {
			return 0, boom
		}
		return v, nil
	})
	if _, err := f.Get(); !errors.Is(err, boom) {
		t.Fatalf("Map.Get() err = %v, want boom", err)
	}
}
