package compat_test

import (
	"errors"
	"fmt"
	"reflect"
	"testing"
	"time"

	"pie"
	"pie/api"
	"pie/apps"
	"pie/inferlet"
	"pie/inferlet/compat"
)

// legacyAutoregressive is pre-v2 inferlet code, verbatim: flat session,
// api.Queue handles, ForwardArgs bundles. It must keep compiling and
// running through the compat shim.
func legacyAutoregressive(s compat.Session) (string, error) {
	m := s.AvailableModels()[0]
	q, err := s.CreateQueue(m.ID)
	if err != nil {
		return "", err
	}
	promF, err := s.Tokenize(q, "the answer is ")
	if err != nil {
		return "", err
	}
	prom, err := promF.Get()
	if err != nil {
		return "", err
	}
	limit := len(prom) + 8
	emb, _ := s.AllocEmbeds(q, len(prom))
	gen, _ := s.AllocEmbeds(q, 1)
	kv, _ := s.AllocKvPages(q, (limit+m.PageSize-1)/m.PageSize)
	pos := make([]int, len(prom))
	for i := range pos {
		pos[i] = i
	}
	s.EmbedText(q, prom, pos, emb)
	s.Forward(q, api.ForwardArgs{InputEmb: emb, OutputKv: kv, OutputEmb: gen})
	var out []int
	for i := len(prom); i < limit; i++ {
		distF, err := s.GetNextDist(q, gen[0])
		if err != nil {
			return "", err
		}
		dist, err := distF.Get()
		if err != nil {
			return "", err
		}
		tok := dist.ArgMax()
		out = append(out, tok)
		s.EmbedText(q, []int{tok}, []int{i}, gen)
		s.Forward(q, api.ForwardArgs{InputKv: kv, InputEmb: gen, OutputKv: kv, OutputEmb: gen})
	}
	s.DeallocEmbeds(q, emb)
	s.DeallocEmbeds(q, gen)
	s.DeallocKvPages(q, kv)
	f, err := s.Synchronize(q)
	if err != nil {
		return "", err
	}
	if _, err := f.Get(); err != nil {
		return "", err
	}
	return fmt.Sprint(out), nil
}

func runProgram(t *testing.T, p inferlet.Program) string {
	t.Helper()
	e := pie.New(pie.Config{Seed: 7, Mode: pie.ModeFull})
	e.MustRegister(p)
	var got string
	if err := e.RunClient(func() {
		h, err := compat.Launch(e, p.Name)
		if err != nil {
			t.Errorf("launch: %v", err)
			return
		}
		got, _ = h.Recv().Get()
		if err := h.Wait(); err != nil {
			t.Errorf("inferlet: %v", err)
		}
	}); err != nil {
		t.Fatal(err)
	}
	return got
}

// TestLegacyProgramMatchesV2 pins the shim's fidelity: the legacy flat
// program and the equivalent v2 capability program generate identical
// tokens from the same seed.
func TestLegacyProgramMatchesV2(t *testing.T) {
	legacy := runProgram(t, inferlet.Program{
		Name: "legacy", BinarySize: 64 << 10,
		Run: compat.Adapt(func(s compat.Session) error {
			out, err := legacyAutoregressive(s)
			if err != nil {
				return err
			}
			s.Send(out)
			return nil
		}),
	})

	v2 := runProgram(t, inferlet.Program{
		Name: "v2", BinarySize: 64 << 10,
		Run: func(s inferlet.Session) error {
			m := s.AvailableModels()[0]
			q, err := s.Open(m.ID)
			if err != nil {
				return err
			}
			tok, _ := q.Tokenizer()
			alloc, _ := q.Alloc()
			text, _ := q.Text()
			fwd, _ := q.Forward()
			sample, _ := q.Sample()
			promF, _ := tok.Encode("the answer is ")
			prom, err := promF.Get()
			if err != nil {
				return err
			}
			limit := len(prom) + 8
			emb, _ := alloc.Embeds(len(prom))
			gen, _ := alloc.Embeds(1)
			kv, _ := alloc.Pages((limit + m.PageSize - 1) / m.PageSize)
			pos := make([]int, len(prom))
			for i := range pos {
				pos[i] = i
			}
			text.Embed(prom, pos, emb)
			fwd.Run(inferlet.Input(emb...), inferlet.AppendKv(kv...), inferlet.Output(gen...))
			var out []int
			for i := len(prom); i < limit; i++ {
				distF, err := sample.NextDist(gen[0])
				if err != nil {
					return err
				}
				dist, err := distF.Get()
				if err != nil {
					return err
				}
				tk := dist.ArgMax()
				out = append(out, tk)
				text.Embed([]int{tk}, []int{i}, gen)
				fwd.Run(inferlet.ReadKv(kv...), inferlet.Input(gen...),
					inferlet.AppendKv(kv...), inferlet.Output(gen...))
			}
			if err := q.Close(); err != nil {
				return err
			}
			s.Send(fmt.Sprint(out))
			return nil
		},
	})

	if legacy == "" || legacy != v2 {
		t.Fatalf("legacy shim diverged from v2: legacy=%s v2=%s", legacy, v2)
	}
}

// TestShimExportImport covers the instance-scoped legacy calls that have
// no queue parameter (export/import/probe) routing through an open queue.
func TestShimExportImport(t *testing.T) {
	got := runProgram(t, inferlet.Program{
		Name: "shim-export", BinarySize: 8 << 10,
		Run: compat.Adapt(func(s compat.Session) error {
			m := s.AvailableModels()[0]
			q, err := s.CreateQueue(m.ID)
			if err != nil {
				return err
			}
			if s.HasExport("shim-key") {
				return fmt.Errorf("phantom export")
			}
			pages, err := s.AllocKvPages(q, 2)
			if err != nil {
				return err
			}
			if err := s.ExportKvPages("shim-key", pages); err != nil {
				return err
			}
			back, err := s.ImportKvPages("shim-key")
			if err != nil {
				return err
			}
			if len(back) != 2 {
				return fmt.Errorf("imported %d pages, want 2", len(back))
			}
			if err := s.ReleaseExport("shim-key"); err != nil {
				return err
			}
			s.Send("ok")
			return nil
		}),
	})
	if got != "ok" {
		t.Fatalf("got %q", got)
	}
}

// TestShimTraitGating: legacy calls against a model lacking the trait
// still fail with ErrNoSuchTrait (negotiation moved to call time).
func TestShimTraitGating(t *testing.T) {
	got := runProgram(t, inferlet.Program{
		Name: "shim-gate", BinarySize: 8 << 10,
		Run: compat.Adapt(func(s compat.Session) error {
			// llama-1b is not multimodal: embed_img must be refused.
			m := s.AvailableModels()[0]
			q, err := s.CreateQueue(m.ID)
			if err != nil {
				return err
			}
			emb, err := s.AllocEmbeds(q, 1)
			if err != nil {
				return err
			}
			_, err = s.EmbedImage(q, []byte{1, 2, 3}, []int{0}, emb)
			if !errors.Is(err, api.ErrNoSuchTrait) {
				return fmt.Errorf("EmbedImage on llama-1b: got %v, want ErrNoSuchTrait", err)
			}
			s.Send("gated")
			return nil
		}),
	})
	if got != "gated" {
		t.Fatalf("got %q", got)
	}
}

// TestAdaptReclaimsAbandonedQueues is the regression test for the shim
// resource leak: Adapt-wrapped legacy code that exits without closing its
// queues used to leave every page and embedding slot it allocated live
// until the whole instance exited. A long-running v2 program embedding a
// legacy section observes the pool before and after: the section's exit
// must return its resources, while the instance is still running.
func TestAdaptReclaimsAbandonedQueues(t *testing.T) {
	e := pie.New(pie.Config{Seed: 7, Mode: pie.ModeTiming})
	legacySection := compat.Adapt(func(s compat.Session) error {
		q, err := s.CreateQueue("llama-1b")
		if err != nil {
			return err
		}
		if _, err := s.AllocKvPages(q, 4); err != nil {
			return err
		}
		if _, err := s.AllocEmbeds(q, 2); err != nil {
			return err
		}
		return nil // exits without DeallocKvPages / queue close: the old leak
	})
	e.MustRegister(inferlet.Program{
		Name: "host", BinarySize: 8 << 10,
		Run: func(s inferlet.Session) error {
			if err := legacySection(s); err != nil {
				return err
			}
			// The legacy section is done; this program keeps running.
			s.Send("section-done")
			if _, err := s.Receive().Get(); err != nil {
				return err
			}
			return nil
		},
	})
	err := e.RunClient(func() {
		h, err := compat.Launch(e, "host")
		if err != nil {
			t.Errorf("launch: %v", err)
			return
		}
		if msg, _ := h.Recv().Get(); msg != "section-done" {
			t.Errorf("got %q", msg)
		}
		// The instance is alive (parked in Receive), yet the legacy
		// section's pages must already be back in the pool.
		if inUse, _ := e.PoolStats("llama-1b"); inUse != 0 {
			t.Errorf("%d pages still allocated after Adapt returned", inUse)
		}
		h.Send("finish")
		if err := h.Wait(); err != nil {
			t.Errorf("wait: %v", err)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestReclaimIsIdempotentAndTolerant: Reclaim on a foreign Session
// implementation is a no-op, and double reclaim is safe.
func TestReclaimIsIdempotentAndTolerant(t *testing.T) {
	compat.Reclaim(nil) // foreign (nil) session: must not panic
	got := runProgram(t, inferlet.Program{
		Name: "double-reclaim", BinarySize: 8 << 10,
		Run: func(s inferlet.Session) error {
			w := compat.Wrap(s)
			q, err := w.CreateQueue("llama-1b")
			if err != nil {
				return err
			}
			if _, err := w.AllocKvPages(q, 2); err != nil {
				return err
			}
			compat.Reclaim(w)
			compat.Reclaim(w) // second pass sees only closed queues
			if _, err := w.AllocKvPages(q, 1); !errors.Is(err, api.ErrQueueClosed) {
				return fmt.Errorf("alloc on reclaimed queue = %v, want ErrQueueClosed", err)
			}
			w.Send("reclaimed")
			return nil
		},
	})
	if got != "reclaimed" {
		t.Fatalf("got %q", got)
	}
}

// TestLegacyLaunchShimFidelity: the pre-v2 launch signature
// (compat.Launch / compat.LaunchAndWait) must behave byte-identically to
// the LaunchSpec path it shims — same messages, logs, stats, and virtual
// time on same-seed engines.
func TestLegacyLaunchShimFidelity(t *testing.T) {
	params := `{"prompt":"Hello, ","max_tokens":6}`
	type outcome struct {
		msg         string
		logs        []string
		cc, ic, tok int
		now         time.Duration
		name, vers  string
	}
	run := func(launch func(e *pie.Engine) (*pie.Handle, error)) outcome {
		e := pie.New(pie.Config{Seed: 11, Mode: pie.ModeFull})
		e.MustRegister(apps.All()...)
		var out outcome
		if err := e.RunClient(func() {
			h, err := launch(e)
			if err != nil {
				t.Errorf("launch: %v", err)
				return
			}
			out.msg, _ = h.Recv().Get()
			if err := h.Wait(); err != nil {
				t.Errorf("inferlet: %v", err)
			}
			out.logs = h.Logs()
			out.cc, out.ic, out.tok = h.Stats()
			out.now = e.Now()
			out.name, out.vers = h.Program()
		}); err != nil {
			t.Fatal(err)
		}
		return out
	}

	legacy := run(func(e *pie.Engine) (*pie.Handle, error) {
		return compat.Launch(e, "text_completion", params)
	})
	v2 := run(func(e *pie.Engine) (*pie.Handle, error) {
		return e.Launch(pie.Spec("text_completion", params))
	})
	if !reflect.DeepEqual(legacy, v2) {
		t.Fatalf("legacy launch shim diverged from LaunchSpec path:\nlegacy %+v\nv2     %+v", legacy, v2)
	}
	if legacy.vers == "" || legacy.name != "text_completion" {
		t.Fatalf("shim lost program identity: %+v", legacy)
	}

	// LaunchAndWait shim: identical logs to the spec path.
	e := pie.New(pie.Config{Seed: 11, Mode: pie.ModeFull})
	e.MustRegister(apps.All()...)
	var logsLegacy, logsV2 []string
	if err := e.RunClient(func() {
		var err error
		if logsLegacy, err = compat.LaunchAndWait(e, "text_completion", params); err != nil {
			t.Errorf("legacy LaunchAndWait: %v", err)
		}
		if logsV2, err = e.LaunchAndWait(pie.Spec("text_completion", params)); err != nil {
			t.Errorf("v2 LaunchAndWait: %v", err)
		}
	}); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(logsLegacy, logsV2) {
		t.Fatalf("LaunchAndWait shim diverged: %v vs %v", logsLegacy, logsV2)
	}
}
