// Package compat adapts the v2 capability API back to the legacy flat
// Session interface (the pre-v2 42-method surface), so existing inferlet
// code — third-party snippets, the paper's listings as originally
// transcribed — keeps compiling and running without modification:
//
//	engine.MustRegister(inferlet.Program{
//	    Name: "legacy",
//	    Run:  compat.Adapt(func(s compat.Session) error { ... old code ... }),
//	})
//
// The shim opens queues through Session.Open and negotiates capabilities
// lazily per queue; trait gating therefore still applies — a legacy call
// against a model lacking the trait fails with api.ErrNoSuchTrait at call
// time instead of capability-request time.
//
// The package also keeps the pre-v2 launch signature compiling: client
// code written against Engine.Launch(program, args...) calls
// compat.Launch / compat.LaunchAndWait, which build a default
// pie.LaunchSpec (latest version, no priority, no deadline).
package compat

import (
	"fmt"
	"time"

	"pie"
	"pie/api"
	"pie/inferlet"
)

// Launcher is the engine surface the legacy launch shims need; *pie.Engine
// satisfies it.
type Launcher interface {
	Launch(spec pie.LaunchSpec) (*pie.Handle, error)
}

// Launch is the legacy launch signature: it builds a default LaunchSpec
// (latest registered version, zero priority, no deadline, no client tag)
// from positional arguments. New code calls Engine.Launch(pie.Spec(...)).
func Launch(e Launcher, program string, args ...string) (*pie.Handle, error) {
	return e.Launch(pie.LaunchSpec{Program: program, Args: args})
}

// LaunchAndWait is the legacy run-to-completion signature over Launch.
func LaunchAndWait(e Launcher, program string, args ...string) ([]string, error) {
	h, err := Launch(e, program, args...)
	if err != nil {
		return nil, err
	}
	if err := h.Wait(); err != nil {
		return h.Logs(), err
	}
	return h.Logs(), nil
}

// Session is the legacy flat inferlet API: every trait's methods in one
// interface, with command queues as opaque api.Queue handles. New code
// should program against inferlet.Session and negotiated capabilities.
type Session interface {
	// Core runtime.
	GetArg() []string
	Send(msg string)
	Receive() api.Future[string]
	Print(msg string)
	InstanceID() string
	Now() time.Duration
	Sleep(d time.Duration)
	Yield()
	Random() uint64
	ReportOutputTokens(n int)

	// Integrated I/O and messaging.
	HTTPGet(url string) api.Future[string]
	HTTPPost(url, body string) api.Future[string]
	Broadcast(topic, msg string)
	Subscribe(topic string) inferlet.Subscription
	Spawn(program string, args []string) (inferlet.Child, error)

	// Model discovery.
	AvailableModels() []api.ModelInfo
	AvailableTraits(m api.ModelID) ([]api.Trait, error)

	// Command queues.
	CreateQueue(m api.ModelID) (api.Queue, error)
	SetQueuePriority(q api.Queue, pri int) error
	Synchronize(q api.Queue) (api.Future[struct{}], error)

	// Allocate trait.
	AllocEmbeds(q api.Queue, n int) ([]api.Embed, error)
	DeallocEmbeds(q api.Queue, ids []api.Embed) error
	AllocKvPages(q api.Queue, n int) ([]api.KvPage, error)
	DeallocKvPages(q api.Queue, ids []api.KvPage) error
	ExportKvPages(name string, ids []api.KvPage) error
	ImportKvPages(name string) ([]api.KvPage, error)
	HasExport(name string) bool
	ReleaseExport(name string) error
	CopyKvPage(q api.Queue, src, dst api.KvPage, srcOff, dstOff, n int) (api.Future[struct{}], error)

	// Forward trait.
	Forward(q api.Queue, args api.ForwardArgs) (api.Future[struct{}], error)
	ForwardWithAdapter(q api.Queue, adapter string, args api.ForwardArgs) (api.Future[struct{}], error)
	ForwardSampled(q api.Queue, args api.ForwardArgs, inlineTokens, inlinePos []int, spec api.SampleSpec) (api.Future[[]int], error)
	MaskKvPage(q api.Queue, page api.KvPage, bits []bool) (api.Future[struct{}], error)

	// InputText / InputImage traits.
	EmbedText(q api.Queue, tokens, positions []int, dst []api.Embed) (api.Future[struct{}], error)
	EmbedImage(q api.Queue, blob []byte, positions []int, dst []api.Embed) (api.Future[struct{}], error)
	NumEmbedsNeeded(m api.ModelID, imageBytes int) (int, error)

	// Tokenize trait.
	Tokenize(q api.Queue, text string) (api.Future[[]int], error)
	Detokenize(q api.Queue, ids []int) (api.Future[string], error)
	GetVocabs(q api.Queue) (api.Future[[][]byte], error)

	// OutputText trait.
	GetNextDist(q api.Queue, emb api.Embed) (api.Future[api.Dist], error)
}

// Wrap adapts a v2 capability session to the legacy flat interface.
// Queues the legacy code opens and abandons stay live until the instance
// exits; long-running v2 programs that embed legacy sections should use
// Adapt (which reclaims on return) or call Reclaim themselves.
func Wrap(s inferlet.Session) Session {
	return &shim{s: s, queues: make(map[api.Queue]*inferlet.Queue)}
}

// Adapt lifts a legacy program body into a v2 inferlet.Program body.
// Legacy code predates queue-scoped reclamation and routinely exits
// without closing its queues; Adapt finalizes them when run returns, so
// every page and embedding slot the legacy section allocated is reclaimed
// immediately — not when the whole instance eventually exits. A body that
// unwinds by panic (e.g. FCFS termination) skips the finalizer: instance
// release already reclaims everything on that path.
func Adapt(run func(Session) error) func(inferlet.Session) error {
	return func(s inferlet.Session) error {
		w := Wrap(s)
		err := run(w)
		Reclaim(w)
		return err
	}
}

// Reclaim closes every still-open queue a wrapped session created,
// returning its queue-scoped resources to the pools. Safe to call more
// than once; sessions not produced by Wrap are ignored.
func Reclaim(s Session) {
	c, ok := s.(*shim)
	if !ok {
		return
	}
	for _, id := range c.order {
		if q, ok := c.queues[id]; ok && !q.Closed() {
			// Close drains queue-ordered deallocs; a failure here means
			// the queue already died with its instance, which reclaims
			// through ReleaseInstance instead.
			_ = q.Close()
		}
	}
}

// shim multiplexes legacy queue handles onto v2 queue objects.
type shim struct {
	s      inferlet.Session
	queues map[api.Queue]*inferlet.Queue
	order  []api.Queue // creation order, for instance-scoped legacy ops
	nextID api.Queue
}

// --- Pass-through core, I/O, discovery -------------------------------------

func (c *shim) GetArg() []string            { return c.s.GetArg() }
func (c *shim) Send(msg string)             { c.s.Send(msg) }
func (c *shim) Receive() api.Future[string] { return c.s.Receive() }
func (c *shim) Print(msg string)            { c.s.Print(msg) }
func (c *shim) InstanceID() string          { return c.s.InstanceID() }
func (c *shim) Now() time.Duration          { return c.s.Now() }
func (c *shim) Sleep(d time.Duration)       { c.s.Sleep(d) }
func (c *shim) Yield()                      { c.s.Yield() }
func (c *shim) Random() uint64              { return c.s.Random() }
func (c *shim) ReportOutputTokens(n int)    { c.s.ReportOutputTokens(n) }
func (c *shim) HTTPGet(url string) api.Future[string] {
	return c.s.HTTPGet(url)
}
func (c *shim) HTTPPost(url, body string) api.Future[string] {
	return c.s.HTTPPost(url, body)
}
func (c *shim) Broadcast(topic, msg string) { c.s.Broadcast(topic, msg) }
func (c *shim) Subscribe(topic string) inferlet.Subscription {
	return c.s.Subscribe(topic)
}
func (c *shim) Spawn(program string, args []string) (inferlet.Child, error) {
	return c.s.Spawn(program, args)
}
func (c *shim) AvailableModels() []api.ModelInfo { return c.s.AvailableModels() }
func (c *shim) AvailableTraits(m api.ModelID) ([]api.Trait, error) {
	return c.s.AvailableTraits(m)
}

// --- Queue handle table -----------------------------------------------------

func (c *shim) CreateQueue(m api.ModelID) (api.Queue, error) {
	q, err := c.s.Open(m)
	if err != nil {
		return 0, err
	}
	c.nextID++
	c.queues[c.nextID] = q
	c.order = append(c.order, c.nextID)
	return c.nextID, nil
}

func (c *shim) queue(qid api.Queue) (*inferlet.Queue, error) {
	q, ok := c.queues[qid]
	if !ok || q.Closed() {
		return nil, api.ErrQueueClosed
	}
	return q, nil
}

// anyQueue returns the oldest open queue: legacy export/import calls are
// instance-scoped, so any queue of this inferlet serves them.
func (c *shim) anyQueue() (*inferlet.Queue, error) {
	for _, id := range c.order {
		if q, ok := c.queues[id]; ok && !q.Closed() {
			return q, nil
		}
	}
	return nil, fmt.Errorf("%w: no open command queue", api.ErrBadArgument)
}

// modelQueue returns (opening if needed) a queue bound to model m.
func (c *shim) modelQueue(m api.ModelID) (*inferlet.Queue, error) {
	for _, id := range c.order {
		if q, ok := c.queues[id]; ok && !q.Closed() && q.Model().ID == m {
			return q, nil
		}
	}
	qid, err := c.CreateQueue(m)
	if err != nil {
		return nil, err
	}
	return c.queues[qid], nil
}

func (c *shim) SetQueuePriority(qid api.Queue, pri int) error {
	q, err := c.queue(qid)
	if err != nil {
		return err
	}
	return q.SetPriority(pri)
}

func (c *shim) Synchronize(qid api.Queue) (api.Future[struct{}], error) {
	q, err := c.queue(qid)
	if err != nil {
		return nil, err
	}
	return q.Barrier()
}

// --- Allocate trait ---------------------------------------------------------

func (c *shim) alloc(qid api.Queue) (*inferlet.Alloc, error) {
	q, err := c.queue(qid)
	if err != nil {
		return nil, err
	}
	return q.Alloc()
}

func (c *shim) AllocEmbeds(qid api.Queue, n int) ([]api.Embed, error) {
	a, err := c.alloc(qid)
	if err != nil {
		return nil, err
	}
	return a.Embeds(n)
}

func (c *shim) DeallocEmbeds(qid api.Queue, ids []api.Embed) error {
	a, err := c.alloc(qid)
	if err != nil {
		return err
	}
	return a.FreeEmbeds(ids)
}

func (c *shim) AllocKvPages(qid api.Queue, n int) ([]api.KvPage, error) {
	a, err := c.alloc(qid)
	if err != nil {
		return nil, err
	}
	return a.Pages(n)
}

func (c *shim) DeallocKvPages(qid api.Queue, ids []api.KvPage) error {
	a, err := c.alloc(qid)
	if err != nil {
		return err
	}
	return a.FreePages(ids)
}

func (c *shim) ExportKvPages(name string, ids []api.KvPage) error {
	q, err := c.anyQueue()
	if err != nil {
		return err
	}
	a, err := q.Alloc()
	if err != nil {
		return err
	}
	return a.Export(name, ids)
}

func (c *shim) ImportKvPages(name string) ([]api.KvPage, error) {
	q, err := c.anyQueue()
	if err != nil {
		return nil, err
	}
	a, err := q.Alloc()
	if err != nil {
		return nil, err
	}
	return a.Import(name)
}

func (c *shim) HasExport(name string) bool {
	q, err := c.anyQueue()
	if err != nil {
		return false
	}
	a, err := q.Alloc()
	if err != nil {
		return false
	}
	return a.HasExport(name)
}

func (c *shim) ReleaseExport(name string) error {
	q, err := c.anyQueue()
	if err != nil {
		return err
	}
	a, err := q.Alloc()
	if err != nil {
		return err
	}
	return a.ReleaseExport(name)
}

func (c *shim) CopyKvPage(qid api.Queue, src, dst api.KvPage, srcOff, dstOff, n int) (api.Future[struct{}], error) {
	a, err := c.alloc(qid)
	if err != nil {
		return nil, err
	}
	return a.CopyPage(src, dst, srcOff, dstOff, n)
}

// --- Forward trait ----------------------------------------------------------

// forwardOpts translates a legacy ForwardArgs bundle to v2 options.
func forwardOpts(args api.ForwardArgs) []inferlet.ForwardOption {
	opts := []inferlet.ForwardOption{
		inferlet.ReadKv(args.InputKv...),
		inferlet.Input(args.InputEmb...),
		inferlet.AppendKv(args.OutputKv...),
		inferlet.Output(args.OutputEmb...),
	}
	if args.Mask != nil {
		opts = append(opts, inferlet.WithMask(args.Mask))
	}
	if args.Adapter != "" {
		opts = append(opts, inferlet.WithAdapter(args.Adapter))
	}
	return opts
}

func (c *shim) Forward(qid api.Queue, args api.ForwardArgs) (api.Future[struct{}], error) {
	q, err := c.queue(qid)
	if err != nil {
		return nil, err
	}
	fwd, err := q.Forward()
	if err != nil {
		return nil, err
	}
	return fwd.Run(forwardOpts(args)...)
}

func (c *shim) ForwardWithAdapter(qid api.Queue, adapter string, args api.ForwardArgs) (api.Future[struct{}], error) {
	args.Adapter = adapter
	return c.Forward(qid, args)
}

func (c *shim) ForwardSampled(qid api.Queue, args api.ForwardArgs, inlineTokens, inlinePos []int, spec api.SampleSpec) (api.Future[[]int], error) {
	q, err := c.queue(qid)
	if err != nil {
		return nil, err
	}
	fused, err := q.Fused()
	if err != nil {
		return nil, err
	}
	opts := forwardOpts(args)
	if len(inlineTokens) > 0 {
		opts = append(opts, inferlet.InlineTokens(inlineTokens, inlinePos))
	}
	opts = append(opts, inferlet.WithSampling(
		inferlet.TopK(spec.TopK),
		inferlet.Temperature(spec.Temperature),
		inferlet.SampleSeed(spec.Seed),
	))
	return fused.Run(opts...)
}

func (c *shim) MaskKvPage(qid api.Queue, page api.KvPage, bits []bool) (api.Future[struct{}], error) {
	q, err := c.queue(qid)
	if err != nil {
		return nil, err
	}
	fwd, err := q.Forward()
	if err != nil {
		return nil, err
	}
	return fwd.MaskPage(page, bits)
}

// --- InputText / InputImage traits ------------------------------------------

func (c *shim) EmbedText(qid api.Queue, tokens, positions []int, dst []api.Embed) (api.Future[struct{}], error) {
	q, err := c.queue(qid)
	if err != nil {
		return nil, err
	}
	text, err := q.Text()
	if err != nil {
		return nil, err
	}
	return text.Embed(tokens, positions, dst)
}

func (c *shim) EmbedImage(qid api.Queue, blob []byte, positions []int, dst []api.Embed) (api.Future[struct{}], error) {
	q, err := c.queue(qid)
	if err != nil {
		return nil, err
	}
	img, err := q.Image()
	if err != nil {
		return nil, err
	}
	return img.Embed(blob, positions, dst)
}

func (c *shim) NumEmbedsNeeded(m api.ModelID, imageBytes int) (int, error) {
	q, err := c.modelQueue(m)
	if err != nil {
		return 0, err
	}
	img, err := q.Image()
	if err != nil {
		return 0, err
	}
	return img.EmbedsNeeded(imageBytes)
}

// --- Tokenize trait ----------------------------------------------------------

func (c *shim) tokenizer(qid api.Queue) (*inferlet.Tokenizer, error) {
	q, err := c.queue(qid)
	if err != nil {
		return nil, err
	}
	return q.Tokenizer()
}

func (c *shim) Tokenize(qid api.Queue, text string) (api.Future[[]int], error) {
	t, err := c.tokenizer(qid)
	if err != nil {
		return nil, err
	}
	return t.Encode(text)
}

func (c *shim) Detokenize(qid api.Queue, ids []int) (api.Future[string], error) {
	t, err := c.tokenizer(qid)
	if err != nil {
		return nil, err
	}
	return t.Decode(ids)
}

func (c *shim) GetVocabs(qid api.Queue) (api.Future[[][]byte], error) {
	t, err := c.tokenizer(qid)
	if err != nil {
		return nil, err
	}
	return t.Vocabs()
}

// --- OutputText trait ---------------------------------------------------------

func (c *shim) GetNextDist(qid api.Queue, emb api.Embed) (api.Future[api.Dist], error) {
	q, err := c.queue(qid)
	if err != nil {
		return nil, err
	}
	sample, err := q.Sample()
	if err != nil {
		return nil, err
	}
	return sample.NextDist(emb)
}

var _ Session = (*shim)(nil)
