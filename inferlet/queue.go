package inferlet

import (
	"fmt"

	"pie/api"
)

// QueueRuntime is the provider interface behind a Queue: the serving
// system's application layer (internal/ilm) implements it, with every
// operation already bound to one command queue of one inferlet instance.
// Inferlet code never touches it — the Queue and its negotiated
// capability objects are the only supported surface.
type QueueRuntime interface {
	SetPriority(pri int) error
	Synchronize() (api.Future[struct{}], error)
	Close() error

	AllocEmbeds(n int) ([]api.Embed, error)
	DeallocEmbeds(ids []api.Embed) error
	AllocKvPages(n int) ([]api.KvPage, error)
	DeallocKvPages(ids []api.KvPage) error
	ExportKvPages(name string, ids []api.KvPage) error
	ImportKvPages(name string) ([]api.KvPage, error)
	HasExport(name string) bool
	ReleaseExport(name string) error
	CopyKvPage(src, dst api.KvPage, srcOff, dstOff, n int) (api.Future[struct{}], error)

	Forward(args api.ForwardArgs) (api.Future[struct{}], error)
	ForwardSampled(args api.ForwardArgs, inlineTokens, inlinePos []int, spec api.SampleSpec) (api.Future[[]int], error)
	MaskKvPage(page api.KvPage, bits []bool) (api.Future[struct{}], error)

	EmbedText(tokens, positions []int, dst []api.Embed) (api.Future[struct{}], error)
	EmbedImage(blob []byte, positions []int, dst []api.Embed) (api.Future[struct{}], error)
	NumEmbedsNeeded(imageBytes int) (int, error)

	GetNextDist(emb api.Embed) (api.Future[api.Dist], error)

	Tokenize(text string) (api.Future[[]int], error)
	Detokenize(ids []int) (api.Future[string], error)
	GetVocabs() (api.Future[[][]byte], error)
}

// Queue is a first-class command queue (§4.1): the ordering, priority,
// and resource domain for inference-layer work against one model.
// Capabilities negotiated from it share its lifetime — Close reclaims
// every resource allocated or imported through the queue and invalidates
// the queue and its capabilities with api.ErrQueueClosed.
type Queue struct {
	info   api.ModelInfo
	rt     QueueRuntime
	closed bool

	// Live resource handles obtained through this queue's Alloc
	// capability, in allocation order (kept as slices so Close reclaims
	// deterministically).
	embeds []api.Embed
	pages  []api.KvPage
}

// NewQueue binds a queue object to its runtime provider. It is called by
// the serving system (Session.Open); applications never construct queues.
func NewQueue(info api.ModelInfo, rt QueueRuntime) *Queue {
	return &Queue{info: info, rt: rt}
}

// QueueOption configures a queue at Open time.
type QueueOption func(q *Queue) error

// WithPriority sets the queue's batch-scheduler priority at open.
func WithPriority(pri int) QueueOption {
	return func(q *Queue) error { return q.SetPriority(pri) }
}

// Model describes the model the queue is bound to.
func (q *Queue) Model() api.ModelInfo { return q.info }

// SetPriority hints the batch scheduler (set_queue_priority).
func (q *Queue) SetPriority(pri int) error {
	if q.closed {
		return api.ErrQueueClosed
	}
	return q.rt.SetPriority(pri)
}

// Barrier returns a future that resolves when every call enqueued before
// this point has completed (synchronize).
func (q *Queue) Barrier() (api.Future[struct{}], error) {
	if q.closed {
		return nil, api.ErrQueueClosed
	}
	return q.rt.Synchronize()
}

// Sync blocks until every call enqueued before this point has completed.
func (q *Queue) Sync() error {
	f, err := q.Barrier()
	if err != nil {
		return err
	}
	_, err = f.Get()
	return err
}

// Close drains the queue, reclaims every embedding slot and KV page
// allocated or imported through it (exports survive: the registry holds
// its own references), and closes it. Further use of the queue or any
// capability negotiated from it fails with api.ErrQueueClosed.
func (q *Queue) Close() error {
	if q.closed {
		return api.ErrQueueClosed
	}
	if err := q.Sync(); err != nil {
		return err
	}
	reclaimed := false
	if len(q.embeds) > 0 {
		if err := q.rt.DeallocEmbeds(q.embeds); err != nil {
			return err
		}
		q.embeds = nil
		reclaimed = true
	}
	if len(q.pages) > 0 {
		if err := q.rt.DeallocKvPages(q.pages); err != nil {
			return err
		}
		q.pages = nil
		reclaimed = true
	}
	if reclaimed {
		// Deallocation is queue-ordered; drain it before closing.
		if err := q.Sync(); err != nil {
			return err
		}
	}
	q.closed = true
	return q.rt.Close()
}

// Closed reports whether Close has run.
func (q *Queue) Closed() bool { return q.closed }

// negotiate gates a capability request on the trait DAG: the model must
// implement t directly or via the transitive supertrait closure.
func (q *Queue) negotiate(t api.Trait) error {
	if q.closed {
		return api.ErrQueueClosed
	}
	if !q.info.HasTraitClosure(t) {
		return fmt.Errorf("%w: %s lacks trait %q", api.ErrNoSuchTrait, q.info.ID, t)
	}
	return nil
}

// guard rejects capability calls on a closed queue before they reach the
// runtime (capabilities share their queue's lifetime).
func (q *Queue) guard() error {
	if q.closed {
		return api.ErrQueueClosed
	}
	return nil
}

// Alloc negotiates the allocate trait: embedding slots, KV pages, and the
// export/import registry.
func (q *Queue) Alloc() (*Alloc, error) {
	if err := q.negotiate(api.TraitAllocate); err != nil {
		return nil, err
	}
	return &Alloc{q: q}, nil
}

// Forward negotiates the forward trait: transformer passes and KV-page
// masking.
func (q *Queue) Forward() (*Forward, error) {
	if err := q.negotiate(api.TraitForward); err != nil {
		return nil, err
	}
	return &Forward{q: q}, nil
}

// Fused negotiates the fused trait: the monolithic-style
// forward_with_sampling pipeline (Table 3 ablation).
func (q *Queue) Fused() (*Fused, error) {
	if err := q.negotiate(api.TraitFused); err != nil {
		return nil, err
	}
	return &Fused{q: q}, nil
}

// Text negotiates the input_text trait: token-id embedding.
func (q *Queue) Text() (*Text, error) {
	if err := q.negotiate(api.TraitInputText); err != nil {
		return nil, err
	}
	return &Text{q: q}, nil
}

// Image negotiates the input_image trait: image-blob embedding.
func (q *Queue) Image() (*Image, error) {
	if err := q.negotiate(api.TraitInputImage); err != nil {
		return nil, err
	}
	return &Image{q: q}, nil
}

// Sample negotiates the output_text trait: next-token distributions.
func (q *Queue) Sample() (*Sample, error) {
	if err := q.negotiate(api.TraitOutputText); err != nil {
		return nil, err
	}
	return &Sample{q: q}, nil
}

// Tokenizer negotiates the tokenize trait: text↔token conversion and
// vocabulary access.
func (q *Queue) Tokenizer() (*Tokenizer, error) {
	if err := q.negotiate(api.TraitTokenize); err != nil {
		return nil, err
	}
	return &Tokenizer{q: q}, nil
}

// --- Allocate capability ---------------------------------------------------

// Alloc is the allocate-trait capability: resource allocation in the
// inferlet's virtual address space, plus the cross-inferlet KV export
// registry. Everything allocated or imported through it belongs to its
// queue and is reclaimed by Queue.Close.
type Alloc struct{ q *Queue }

// Embeds allocates n embedding slots (alloc_emb).
func (a *Alloc) Embeds(n int) ([]api.Embed, error) {
	if err := a.q.guard(); err != nil {
		return nil, err
	}
	ids, err := a.q.rt.AllocEmbeds(n)
	if err != nil {
		return nil, err
	}
	a.q.embeds = append(a.q.embeds, ids...)
	return ids, nil
}

// FreeEmbeds releases embedding slots, queue-ordered (dealloc_emb).
func (a *Alloc) FreeEmbeds(ids []api.Embed) error {
	if err := a.q.guard(); err != nil {
		return err
	}
	if err := a.q.rt.DeallocEmbeds(ids); err != nil {
		return err
	}
	a.q.embeds = removeHandles(a.q.embeds, ids)
	return nil
}

// Pages allocates n KV-cache pages (alloc_kvpage).
func (a *Alloc) Pages(n int) ([]api.KvPage, error) {
	if err := a.q.guard(); err != nil {
		return nil, err
	}
	ids, err := a.q.rt.AllocKvPages(n)
	if err != nil {
		return nil, err
	}
	a.q.pages = append(a.q.pages, ids...)
	return ids, nil
}

// FreePages releases KV pages, queue-ordered (dealloc_kvpage).
func (a *Alloc) FreePages(ids []api.KvPage) error {
	if err := a.q.guard(); err != nil {
		return err
	}
	if err := a.q.rt.DeallocKvPages(ids); err != nil {
		return err
	}
	a.q.pages = removeHandles(a.q.pages, ids)
	return nil
}

// Export publishes pages under a global name for other inferlets
// (export_kvpage). The registry takes its own references, so the export
// outlives both the queue and the exporting inferlet.
func (a *Alloc) Export(name string, ids []api.KvPage) error {
	if err := a.q.guard(); err != nil {
		return err
	}
	return a.q.rt.ExportKvPages(name, ids)
}

// Import maps another inferlet's exported pages into this queue's address
// space, shared not copied (import_kvpage).
func (a *Alloc) Import(name string) ([]api.KvPage, error) {
	if err := a.q.guard(); err != nil {
		return nil, err
	}
	ids, err := a.q.rt.ImportKvPages(name)
	if err != nil {
		return nil, err
	}
	a.q.pages = append(a.q.pages, ids...)
	return ids, nil
}

// HasExport probes the export registry.
func (a *Alloc) HasExport(name string) bool {
	if a.q.closed {
		return false
	}
	return a.q.rt.HasExport(name)
}

// ReleaseExport removes an export registration (release_export).
func (a *Alloc) ReleaseExport(name string) error {
	if err := a.q.guard(); err != nil {
		return err
	}
	return a.q.rt.ReleaseExport(name)
}

// CopyPage copies KV entries token-by-token between pages (copy_kvpage).
func (a *Alloc) CopyPage(src, dst api.KvPage, srcOff, dstOff, n int) (api.Future[struct{}], error) {
	if err := a.q.guard(); err != nil {
		return nil, err
	}
	return a.q.rt.CopyKvPage(src, dst, srcOff, dstOff, n)
}

// removeHandles drops the freed handles from a tracked slice, preserving
// allocation order for the survivors.
func removeHandles[T comparable](live []T, freed []T) []T {
	drop := make(map[T]bool, len(freed))
	for _, id := range freed {
		drop[id] = true
	}
	out := live[:0]
	for _, id := range live {
		if !drop[id] {
			out = append(out, id)
		}
	}
	return out
}

// --- Forward capability ----------------------------------------------------

// forwardPlan is the builder functional forward options write into.
type forwardPlan struct {
	args       api.ForwardArgs
	inlineToks []int
	inlinePos  []int
	sample     *api.SampleSpec
}

// ForwardOption configures one forward pass (§4.2). Compose freely:
//
//	fwd.Run(inferlet.ReadKv(ctx...), inferlet.Input(emb...),
//	        inferlet.AppendKv(tail...), inferlet.Output(out...))
type ForwardOption func(*forwardPlan)

// ReadKv sets the attention-context pages (ForwardArgs.InputKv).
func ReadKv(pages ...api.KvPage) ForwardOption {
	return func(p *forwardPlan) { p.args.InputKv = append(p.args.InputKv, pages...) }
}

// Input sets the input embedding slots consumed by the pass.
func Input(embs ...api.Embed) ForwardOption {
	return func(p *forwardPlan) { p.args.InputEmb = append(p.args.InputEmb, embs...) }
}

// AppendKv sets the pages that receive the new tokens' KV entries.
func AppendKv(pages ...api.KvPage) ForwardOption {
	return func(p *forwardPlan) { p.args.OutputKv = append(p.args.OutputKv, pages...) }
}

// Output sets the slots that receive the transformer outputs of the last
// len(embs) input tokens.
func Output(embs ...api.Embed) ForwardOption {
	return func(p *forwardPlan) { p.args.OutputEmb = append(p.args.OutputEmb, embs...) }
}

// WithMask supplies an explicit boolean attention matrix (one row per
// input embedding; true admits attention). Without it a causal mask is
// inferred from sequence positions.
func WithMask(mask [][]bool) ForwardOption {
	return func(p *forwardPlan) { p.args.Mask = mask }
}

// WithAdapter applies a registered LoRA-style adapter
// (forward_with_adapter; requires the adapter trait at call time).
func WithAdapter(name string) ForwardOption {
	return func(p *forwardPlan) { p.args.Adapter = name }
}

// InlineTokens folds token embedding into a fused pass: token ids at
// explicit positions, embedded in-kernel (Fused capability only).
func InlineTokens(tokens, positions []int) ForwardOption {
	return func(p *forwardPlan) {
		p.inlineToks = append([]int(nil), tokens...)
		p.inlinePos = append([]int(nil), positions...)
	}
}

// WithSampling configures fused on-GPU sampling (Fused capability only).
func WithSampling(opts ...SampleOption) ForwardOption {
	return func(p *forwardPlan) {
		spec := &api.SampleSpec{}
		if p.sample != nil {
			spec = p.sample
		}
		for _, o := range opts {
			o(spec)
		}
		p.sample = spec
	}
}

// SampleOption configures fused sampling.
type SampleOption func(*api.SampleSpec)

// TopK truncates fused sampling to the k most probable tokens.
func TopK(k int) SampleOption { return func(s *api.SampleSpec) { s.TopK = k } }

// Temperature sets the fused sampling temperature; <= 0 is greedy.
func Temperature(t float32) SampleOption { return func(s *api.SampleSpec) { s.Temperature = t } }

// SampleSeed seeds the fused sampler's deterministic stream.
func SampleSeed(seed uint64) SampleOption { return func(s *api.SampleSpec) { s.Seed = seed } }

func buildPlan(opts []ForwardOption) *forwardPlan {
	p := &forwardPlan{}
	for _, o := range opts {
		o(p)
	}
	return p
}

// Forward is the forward-trait capability: the core transformer pass and
// token-level KV masking.
type Forward struct{ q *Queue }

// Run schedules one forward pass described by opts. Fused-only options
// (InlineTokens, WithSampling) are rejected with api.ErrBadArgument;
// WithAdapter additionally requires the adapter trait.
func (f *Forward) Run(opts ...ForwardOption) (api.Future[struct{}], error) {
	if err := f.q.guard(); err != nil {
		return nil, err
	}
	p := buildPlan(opts)
	if p.sample != nil || p.inlineToks != nil {
		return nil, fmt.Errorf("%w: sampling/inline options need the fused capability", api.ErrBadArgument)
	}
	if p.args.Adapter != "" && !f.q.info.HasTraitClosure(api.TraitAdapter) {
		return nil, fmt.Errorf("%w: %s lacks trait %q", api.ErrNoSuchTrait, f.q.info.ID, api.TraitAdapter)
	}
	return f.q.rt.Forward(p.args)
}

// MaskPage sets token-level attention mask bits on a page (mask_kvpage;
// true hides the token).
func (f *Forward) MaskPage(page api.KvPage, bits []bool) (api.Future[struct{}], error) {
	if err := f.q.guard(); err != nil {
		return nil, err
	}
	return f.q.rt.MaskKvPage(page, bits)
}

// Fused is the fused-trait capability: forward_with_sampling, the
// monolithic-style pipeline that embeds, forwards, and samples in one
// kernel. Used by the Table 3 opportunity-cost ablation.
type Fused struct{ q *Queue }

// Run schedules a fused pass and resolves with the sampled token ids.
// Accepts the full ForwardOption set including InlineTokens and
// WithSampling (absent sampling options mean greedy).
func (f *Fused) Run(opts ...ForwardOption) (api.Future[[]int], error) {
	if err := f.q.guard(); err != nil {
		return nil, err
	}
	p := buildPlan(opts)
	if p.args.Adapter != "" && !f.q.info.HasTraitClosure(api.TraitAdapter) {
		return nil, fmt.Errorf("%w: %s lacks trait %q", api.ErrNoSuchTrait, f.q.info.ID, api.TraitAdapter)
	}
	spec := api.SampleSpec{}
	if p.sample != nil {
		spec = *p.sample
	}
	return f.q.rt.ForwardSampled(p.args, p.inlineToks, p.inlinePos, spec)
}

// --- Input capabilities ----------------------------------------------------

// Text is the input_text-trait capability.
type Text struct{ q *Queue }

// Embed embeds token ids into slots at explicit sequence positions
// (embed_txt).
func (t *Text) Embed(tokens, positions []int, dst []api.Embed) (api.Future[struct{}], error) {
	if err := t.q.guard(); err != nil {
		return nil, err
	}
	return t.q.rt.EmbedText(tokens, positions, dst)
}

// Image is the input_image-trait capability.
type Image struct{ q *Queue }

// Embed embeds an image blob into slots (embed_img).
func (i *Image) Embed(blob []byte, positions []int, dst []api.Embed) (api.Future[struct{}], error) {
	if err := i.q.guard(); err != nil {
		return nil, err
	}
	return i.q.rt.EmbedImage(blob, positions, dst)
}

// EmbedsNeeded sizes the slot allocation for an image.
func (i *Image) EmbedsNeeded(imageBytes int) (int, error) {
	if err := i.q.guard(); err != nil {
		return 0, err
	}
	return i.q.rt.NumEmbedsNeeded(imageBytes)
}

// --- Output capability -----------------------------------------------------

// Sample is the output_text-trait capability.
type Sample struct{ q *Queue }

// NextDist resolves with the truncated next-token distribution of an
// output embedding (get_next_dist).
func (s *Sample) NextDist(emb api.Embed) (api.Future[api.Dist], error) {
	if err := s.q.guard(); err != nil {
		return nil, err
	}
	return s.q.rt.GetNextDist(emb)
}

// --- Tokenizer capability --------------------------------------------------

// Tokenizer is the tokenize-trait capability.
type Tokenizer struct{ q *Queue }

// Encode converts text to token ids (tokenize).
func (t *Tokenizer) Encode(text string) (api.Future[[]int], error) {
	if err := t.q.guard(); err != nil {
		return nil, err
	}
	return t.q.rt.Tokenize(text)
}

// Decode converts token ids back to text (detokenize).
func (t *Tokenizer) Decode(ids []int) (api.Future[string], error) {
	if err := t.q.guard(); err != nil {
		return nil, err
	}
	return t.q.rt.Detokenize(ids)
}

// Vocabs retrieves the byte expansion of every vocabulary entry
// (get_vocabs).
func (t *Tokenizer) Vocabs() (api.Future[[][]byte], error) {
	if err := t.q.guard(); err != nil {
		return nil, err
	}
	return t.q.rt.GetVocabs()
}
