// Package inferlet defines Pie's programming model (§4): inferlets are
// user programs that orchestrate LLM generation end to end by issuing
// fine-grained API calls against the serving system.
//
// An inferlet runs single-threaded inside a sandboxed, event-driven
// runtime (the paper uses WebAssembly; this reproduction runs Go closures
// under an equivalent cooperative sandbox — see internal/ilm). Concurrency
// within an inferlet comes from asynchronous, non-blocking API calls that
// return futures, composed with the api package's combinators.
//
// The API is layered (v2). Session carries only what every inferlet
// needs: the core runtime, messaging and I/O, and model discovery.
// Everything model-bound hangs off a *Queue obtained from
// Session.Open, and each trait of Table 1 is a capability object
// negotiated from the queue:
//
//	q, _ := s.Open("llama-1b")
//	tok, _ := q.Tokenizer()       // trait: tokenize
//	alloc, _ := q.Alloc()         // trait: allocate
//	fwd, _ := q.Forward()         // trait: forward
//	sample, _ := q.Sample()       // trait: output_text
//
// Negotiation enforces the supertrait DAG (api.Supertraits): requesting a
// capability whose trait — or any transitive supertrait — the model lacks
// fails with api.ErrNoSuchTrait, so programs discover at queue-open time
// exactly which parts of the surface a model serves, and new traits can be
// added without widening any existing interface.
package inferlet

import (
	"strings"
	"time"

	"pie/api"
)

// Program is a deployable inferlet: the unit of service in Pie (the system
// "elevates programs, not prompts, to the basic unit of service").
type Program struct {
	// Name registers the program with the Inferlet Lifecycle Manager.
	Name string
	// BinarySize is the size in bytes of the compiled Wasm artifact this
	// program stands in for; it drives upload and JIT costs on cold
	// launches (Fig. 9). Table 2 of the paper records the real sizes.
	BinarySize int
	// Manifest declares the deployment contract: version, required
	// models/traits, and resource limits. The zero value is a valid
	// manifest (version "1.0.0", no requirements, no limits).
	Manifest Manifest
	// Run is the program body. A returned error is reported to the client
	// that launched the inferlet.
	Run func(s Session) error
}

// Manifest is a program's deployment contract. The registry validates it
// against the serving catalog's trait closure when the program is
// registered and again at launch, so an unsatisfiable deployment fails
// with api.ErrUnsatisfiedManifest up front instead of deep inside a
// running inferlet.
type Manifest struct {
	// Version is the artifact's semantic version ("major.minor.patch").
	// Empty defaults to "1.0.0". The registry keys artifacts by
	// name@version; launches without an explicit version get the latest.
	Version string
	// Models lists the model ids the program requires. Empty means any:
	// when Traits is also set, at least one catalog model must satisfy
	// every required trait.
	Models []api.ModelID
	// Traits lists the capability traits every required model must
	// implement (through the supertrait closure).
	Traits []api.Trait
	// Class names the service class launches of this program default to
	// (api.ServiceClass, registered in the engine config). A LaunchSpec
	// class overrides it. Empty means unclassed. When the engine has a
	// class registry, an unknown name fails launches typed
	// api.ErrNoSuchClass.
	Class string
	// Limits bounds the instance's resource consumption; zero fields are
	// unlimited.
	Limits Limits
}

// Limits are per-instance resource bounds declared in a Manifest and
// enforced by the control layer with api.ErrLimitExceeded.
type Limits struct {
	// MaxQueues caps concurrently open command queues.
	MaxQueues int
	// MaxKvPages caps live KV pages across the instance's address space.
	MaxKvPages int
	// Deadline bounds the instance's virtual runtime; on expiry the
	// instance is aborted with api.ErrDeadlineExceeded. A launch-spec
	// deadline tightens (never loosens) this bound.
	Deadline time.Duration
}

// Ref formats the registry key for a program at a version ("name@version").
func Ref(name, version string) string { return name + "@" + version }

// SplitRef splits a program reference into name and version; a bare name
// returns an empty version (meaning "latest").
func SplitRef(ref string) (name, version string) {
	if i := strings.IndexByte(ref, '@'); i >= 0 {
		return ref[:i], ref[i+1:]
	}
	return ref, ""
}

// Subscription is a handle on a broadcast topic (subscribe).
type Subscription interface {
	// Recv resolves with the next message on the topic.
	Recv() api.Future[string]
	// Cancel detaches from the topic.
	Cancel()
}

// Child is a handle on an inferlet spawned by another inferlet
// (inter-inferlet workflows such as Agent-SWARM).
type Child interface {
	// Send delivers a message to the child's receive queue.
	Send(msg string)
	// Recv resolves with the child's next message to its parent.
	Recv() api.Future[string]
	// Wait resolves when the child finishes, with its error result.
	Wait() api.Future[error]
}

// Session is the core API an inferlet programs against: the control-layer
// runtime, messaging and I/O, and model discovery (§4, Table 1 "core"
// trait). All inference-layer access goes through Open, which returns a
// command-queue object whose trait capabilities are negotiated per model.
type Session interface {
	// --- Core runtime (control layer) ---

	// GetArg returns the launch arguments.
	GetArg() []string
	// Send delivers a message to the client that launched this inferlet.
	Send(msg string)
	// Receive resolves with the next message from the client.
	Receive() api.Future[string]
	// Print emits a debug line through the runtime's log stream.
	Print(msg string)
	// InstanceID names this inferlet instance.
	InstanceID() string
	// Now returns the current time in the serving system's clock domain.
	Now() time.Duration
	// Sleep suspends the inferlet.
	Sleep(d time.Duration)
	// Yield lets other inferlets run.
	Yield()
	// Random returns sandboxed entropy (deterministic per instance).
	Random() uint64
	// ReportOutputTokens tells the runtime how many output tokens the
	// application has accepted (instrumentation; Fig. 11).
	ReportOutputTokens(n int)

	// --- Integrated I/O and messaging (control layer, §4.3) ---

	// HTTPGet performs an asynchronous HTTP GET against an external
	// service.
	HTTPGet(url string) api.Future[string]
	// HTTPPost performs an asynchronous HTTP POST.
	HTTPPost(url, body string) api.Future[string]
	// Broadcast publishes to every subscriber of a topic.
	Broadcast(topic, msg string)
	// Subscribe attaches to a topic.
	Subscribe(topic string) Subscription
	// Spawn launches another inferlet and returns a handle to it.
	Spawn(program string, args []string) (Child, error)

	// --- Model discovery ---

	// AvailableModels lists servable models.
	AvailableModels() []api.ModelInfo
	// AvailableTraits lists a model's declared traits.
	AvailableTraits(m api.ModelID) ([]api.Trait, error)

	// --- Command queues (the gateway to the inference layer) ---

	// Open creates a command queue against a model and returns the queue
	// object from which trait capabilities are negotiated. It fails with
	// api.ErrNoSuchModel when the model is not installed.
	Open(m api.ModelID, opts ...QueueOption) (*Queue, error)
}
