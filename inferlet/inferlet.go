// Package inferlet defines Pie's programming model (§4): inferlets are
// user programs that orchestrate LLM generation end to end by issuing
// fine-grained API calls against the serving system.
//
// An inferlet runs single-threaded inside a sandboxed, event-driven
// runtime (the paper uses WebAssembly; this reproduction runs Go closures
// under an equivalent cooperative sandbox — see internal/ilm). Concurrency
// within an inferlet comes from asynchronous, non-blocking API calls that
// return futures.
//
// The Session interface is the complete API surface of Table 1 — 42 entry
// points split between the control layer (runtime, messaging, I/O; cheap,
// handled without touching the GPU) and the inference layer
// (embed/forward/sample and KV-cache operations, which flow through
// command queues and the batch scheduler). See the README's API table for
// the full inventory and trait assignment.
package inferlet

import (
	"time"

	"pie/api"
)

// Program is a deployable inferlet: the unit of service in Pie (the system
// "elevates programs, not prompts, to the basic unit of service").
type Program struct {
	// Name registers the program with the Inferlet Lifecycle Manager.
	Name string
	// BinarySize is the size in bytes of the compiled Wasm artifact this
	// program stands in for; it drives upload and JIT costs on cold
	// launches (Fig. 9). Table 2 of the paper records the real sizes.
	BinarySize int
	// Run is the program body. A returned error is reported to the client
	// that launched the inferlet.
	Run func(s Session) error
}

// Subscription is a handle on a broadcast topic (subscribe).
type Subscription interface {
	// Recv resolves with the next message on the topic.
	Recv() api.Future[string]
	// Cancel detaches from the topic.
	Cancel()
}

// Child is a handle on an inferlet spawned by another inferlet
// (inter-inferlet workflows such as Agent-SWARM).
type Child interface {
	// Send delivers a message to the child's receive queue.
	Send(msg string)
	// Recv resolves with the child's next message to its parent.
	Recv() api.Future[string]
	// Wait resolves when the child finishes, with its error result.
	Wait() api.Future[error]
}

// Session is the API an inferlet programs against. Methods that take an
// api.Queue are processed by the inference layer via the batch scheduler;
// the rest are handled directly by the control layer (§4, Table 1).
type Session interface {
	// --- Core runtime (control layer) ---

	// GetArg returns the launch arguments.
	GetArg() []string
	// Send delivers a message to the client that launched this inferlet.
	Send(msg string)
	// Receive resolves with the next message from the client.
	Receive() api.Future[string]
	// Print emits a debug line through the runtime's log stream.
	Print(msg string)
	// InstanceID names this inferlet instance.
	InstanceID() string
	// Now returns the current time in the serving system's clock domain.
	Now() time.Duration
	// Sleep suspends the inferlet.
	Sleep(d time.Duration)
	// Yield lets other inferlets run.
	Yield()
	// Random returns sandboxed entropy (deterministic per instance).
	Random() uint64
	// ReportOutputTokens tells the runtime how many output tokens the
	// application has accepted (instrumentation; Fig. 11).
	ReportOutputTokens(n int)

	// --- Integrated I/O and messaging (control layer, §4.3) ---

	// HTTPGet performs an asynchronous HTTP GET against an external
	// service.
	HTTPGet(url string) api.Future[string]
	// HTTPPost performs an asynchronous HTTP POST.
	HTTPPost(url, body string) api.Future[string]
	// Broadcast publishes to every subscriber of a topic.
	Broadcast(topic, msg string)
	// Subscribe attaches to a topic.
	Subscribe(topic string) Subscription
	// Spawn launches another inferlet and returns a handle to it.
	Spawn(program string, args []string) (Child, error)

	// --- Model discovery ---

	// AvailableModels lists servable models.
	AvailableModels() []api.ModelInfo
	// AvailableTraits lists a model's traits.
	AvailableTraits(m api.ModelID) ([]api.Trait, error)

	// --- Command queues ---

	// CreateQueue opens a command queue against a model.
	CreateQueue(m api.ModelID) (api.Queue, error)
	// SetQueuePriority hints the batch scheduler.
	SetQueuePriority(q api.Queue, pri int) error
	// Synchronize resolves when all previously enqueued calls complete.
	Synchronize(q api.Queue) (api.Future[struct{}], error)

	// --- Allocate trait ---

	// AllocEmbeds allocates embedding slots.
	AllocEmbeds(q api.Queue, n int) ([]api.Embed, error)
	// DeallocEmbeds releases embedding slots (queue-ordered).
	DeallocEmbeds(q api.Queue, ids []api.Embed) error
	// AllocKvPages allocates KV-cache pages.
	AllocKvPages(q api.Queue, n int) ([]api.KvPage, error)
	// DeallocKvPages releases KV pages (queue-ordered).
	DeallocKvPages(q api.Queue, ids []api.KvPage) error
	// ExportKvPages publishes pages under a global name for other
	// inferlets.
	ExportKvPages(name string, ids []api.KvPage) error
	// ImportKvPages maps another inferlet's exported pages (shared).
	ImportKvPages(name string) ([]api.KvPage, error)
	// HasExport probes the export registry.
	HasExport(name string) bool
	// ReleaseExport removes an export registration.
	ReleaseExport(name string) error
	// CopyKvPage copies KV entries token-by-token between pages.
	CopyKvPage(q api.Queue, src, dst api.KvPage, srcOff, dstOff, n int) (api.Future[struct{}], error)

	// --- Forward trait ---

	// Forward runs the transformer pass described by args.
	Forward(q api.Queue, args api.ForwardArgs) (api.Future[struct{}], error)
	// ForwardWithAdapter is Forward with a LoRA adapter applied.
	ForwardWithAdapter(q api.Queue, adapter string, args api.ForwardArgs) (api.Future[struct{}], error)
	// ForwardSampled is the fused monolithic-style pipeline (TraitFused):
	// optional inline embedding of token ids, forward, and on-GPU
	// sampling in a single kernel. Used by the Table 3 ablation.
	ForwardSampled(q api.Queue, args api.ForwardArgs, inlineTokens, inlinePos []int, spec api.SampleSpec) (api.Future[[]int], error)
	// MaskKvPage sets token-level attention mask bits on a page.
	MaskKvPage(q api.Queue, page api.KvPage, bits []bool) (api.Future[struct{}], error)

	// --- InputText / InputImage traits ---

	// EmbedText embeds token ids into slots at explicit positions.
	EmbedText(q api.Queue, tokens, positions []int, dst []api.Embed) (api.Future[struct{}], error)
	// EmbedImage embeds an image blob into slots.
	EmbedImage(q api.Queue, blob []byte, positions []int, dst []api.Embed) (api.Future[struct{}], error)
	// NumEmbedsNeeded sizes the slot allocation for an image.
	NumEmbedsNeeded(m api.ModelID, imageBytes int) (int, error)

	// --- Tokenize trait ---

	// Tokenize converts text to token ids.
	Tokenize(q api.Queue, text string) (api.Future[[]int], error)
	// Detokenize converts token ids back to text.
	Detokenize(q api.Queue, ids []int) (api.Future[string], error)
	// GetVocabs retrieves the byte expansion of every vocabulary entry.
	GetVocabs(q api.Queue) (api.Future[[][]byte], error)

	// --- OutputText trait ---

	// GetNextDist resolves with the truncated next-token distribution of
	// an output embedding.
	GetNextDist(q api.Queue, emb api.Embed) (api.Future[api.Dist], error)
}
