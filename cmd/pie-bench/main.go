// Command pie-bench regenerates the paper's evaluation tables and figures
// (§7) on the simulated testbed and prints them in paper style.
//
// Usage:
//
//	pie-bench                  # run everything at full scale
//	pie-bench -quick           # CI-sized workloads
//	pie-bench -exp fig7,table5 # selected experiments
//	pie-bench -seed 7          # different deterministic seed
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"pie/internal/eval"
)

func main() {
	quick := flag.Bool("quick", false, "run CI-sized workloads")
	seed := flag.Uint64("seed", 42, "deterministic seed for every experiment")
	exps := flag.String("exp", "all", "comma-separated experiment ids (table2,fig6,fig7,fig8,fig9,fig10,fig11,table3,table4,table5)")
	flag.Parse()

	o := eval.Options{Seed: *seed, Quick: *quick}
	want := map[string]bool{}
	for _, e := range strings.Split(*exps, ",") {
		want[strings.TrimSpace(e)] = true
	}
	all := want["all"]
	run := func(id string, fn func() string) {
		if !all && !want[id] {
			return
		}
		start := time.Now()
		out := fn()
		fmt.Println(out)
		fmt.Printf("  [%s regenerated in %v wall time]\n\n", id, time.Since(start).Round(time.Millisecond))
	}

	fmt.Printf("pie-bench: reproducing the Pie (SOSP'25) evaluation  (seed=%d quick=%v)\n\n", *seed, *quick)
	run("table2", func() string { return eval.Table2().Table() })
	run("fig6", func() string { return eval.Figure6(o).Table() })
	run("fig7", func() string { return eval.Figure7(o).Table() })
	run("fig8", func() string { return eval.Figure8(o).Table() })
	run("fig9", func() string { return eval.Figure9(o).Table() })
	run("fig10", func() string { return eval.Figure10(o).Table() })
	run("fig11", func() string { return eval.Figure11(o).Table() })
	run("table3", func() string { return eval.Table3(o).Table() })
	run("table4", func() string { return eval.Table4(o).Table() })
	run("table5", func() string { return eval.Table5(o).Table() })

	if !all && len(want) == 0 {
		fmt.Fprintln(os.Stderr, "no experiments selected")
		os.Exit(2)
	}
}
