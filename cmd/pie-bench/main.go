// Command pie-bench regenerates the paper's evaluation tables and figures
// (§7) on the simulated testbed and prints them in paper style.
//
// Usage:
//
//	pie-bench                  # run everything at full scale
//	pie-bench -quick           # CI-sized workloads
//	pie-bench -exp fig7,table5 # selected experiments
//	pie-bench -seed 7          # different deterministic seed
//	pie-bench -json            # also write BENCH_sim.json (perf trajectory)
//
// The -json report records, per experiment and in total, the wall time,
// the number of virtual events processed, and events/sec — the headline
// replay-speed metric tracked across PRs (see EXPERIMENTS.md).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"pie/internal/benchfmt"
	"pie/internal/eval"
	"pie/internal/sim"
)

// defaultJSONPath is where -json writes its report unless -json-out
// overrides it.
const defaultJSONPath = "BENCH_sim.json"

func main() {
	quick := flag.Bool("quick", false, "run CI-sized workloads")
	seed := flag.Uint64("seed", 42, "deterministic seed for every experiment")
	exps := flag.String("exp", "all", "comma-separated experiment ids (table2,fig6,fig7,fig8,fig9,fig10,fig11,table3,table4,table5,cluster,offload,coldstart,faults,slo,pd,shard,fleet)")
	clusterExp := flag.Bool("cluster", false, "also run the replica-scaling cluster sweep (experiment id: cluster)")
	offloadExp := flag.Bool("offload", false, "also run the tiered-KV host-offload oversubscription sweep (experiment id: offload)")
	coldstartExp := flag.Bool("coldstart", false, "also run the deployable-artifact cold/warm launch sweep (experiment id: coldstart)")
	faultsExp := flag.Bool("faults", false, "also run the fault-tolerance chaos experiment (experiment id: faults)")
	sloExp := flag.Bool("slo", false, "also run the SLO-aware service-class scaling experiment (experiment id: slo)")
	pdExp := flag.Bool("pd", false, "also run the prefill/decode disaggregation sweep (experiment id: pd)")
	shardExp := flag.Bool("shard", false, "also run the sharded-core fleet scaling sweep, 1 to 128 replicas (experiment id: shard)")
	fleetExp := flag.Bool("fleet", false, "also run the fleet-manifest rolling-upgrade and hot-reload experiment (experiment id: fleet)")
	jsonOut := flag.Bool("json", false, "write BENCH_sim.json with wall time and events/sec per experiment")
	jsonPath := flag.String("json-out", defaultJSONPath, "path for the -json report (implies -json)")
	flag.Parse()
	// An explicit output path means the user wants the report, -json or not.
	writeReport := *jsonOut
	flag.Visit(func(f *flag.Flag) {
		if f.Name == "json-out" {
			writeReport = true
		}
	})

	o := eval.Options{Seed: *seed, Quick: *quick}
	want := map[string]bool{}
	for _, e := range strings.Split(*exps, ",") {
		want[strings.TrimSpace(e)] = true
	}
	if *clusterExp {
		want["cluster"] = true
	}
	if *offloadExp {
		want["offload"] = true
	}
	if *coldstartExp {
		want["coldstart"] = true
	}
	if *faultsExp {
		want["faults"] = true
	}
	if *sloExp {
		want["slo"] = true
	}
	if *pdExp {
		want["pd"] = true
	}
	if *shardExp {
		want["shard"] = true
	}
	if *fleetExp {
		want["fleet"] = true
	}
	all := want["all"]

	rep := benchfmt.Report{Seed: *seed, Quick: *quick, GoMaxProcs: runtime.GOMAXPROCS(0)}
	suiteStart := time.Now()
	eventsStart := sim.TotalEvents()

	run := func(id string, fn func() (string, map[string]float64)) {
		if !all && !want[id] {
			return
		}
		start := time.Now()
		ev0 := sim.TotalEvents()
		out, headline := fn()
		wall := time.Since(start)
		events := sim.TotalEvents() - ev0
		fmt.Println(out)
		fmt.Printf("  [%s regenerated in %v wall time; %d events, %.0f events/sec]\n\n",
			id, wall.Round(time.Millisecond), events, float64(events)/wall.Seconds())
		rep.Experiments = append(rep.Experiments, benchfmt.Experiment{
			ID:           id,
			WallMS:       float64(wall) / float64(time.Millisecond),
			Events:       events,
			EventsPerSec: float64(events) / wall.Seconds(),
			Headline:     headline,
		})
	}

	fmt.Printf("pie-bench: reproducing the Pie (SOSP'25) evaluation  (seed=%d quick=%v)\n\n", *seed, *quick)
	run("table2", func() (string, map[string]float64) {
		r := eval.Table2()
		return r.Table(), map[string]float64{"programs": float64(len(r.Rows))}
	})
	run("fig6", func() (string, map[string]float64) {
		r := eval.Figure6(o)
		h := map[string]float64{}
		for _, row := range r.Rows {
			h[row.Workflow+"-"+row.System+"-latency-sec"] = row.Latency.Seconds()
			h[row.Workflow+"-"+row.System+"-agents-per-sec"] = row.Throughput
		}
		return r.Table(), h
	})
	run("fig7", func() (string, map[string]float64) {
		r := eval.Figure7(o)
		h := map[string]float64{}
		if len(r.Series) > 0 {
			base := r.Series[0]
			full := r.Series[len(r.Series)-1]
			last := len(base.Throughput) - 1
			h["vllm-agents-per-sec"] = base.Throughput[last]
			h["pie-full-agents-per-sec"] = full.Throughput[last]
			h["speedup-x"] = full.Throughput[last] / base.Throughput[last]
		}
		return r.Table(), h
	})
	run("fig8", func() (string, map[string]float64) {
		r := eval.Figure8(o)
		h := map[string]float64{}
		if pieTC, ok := r.Get("textcomp", "pie"); ok {
			h["textcomp-pie-ms"] = float64(pieTC.Latency) / float64(time.Millisecond)
		}
		if vllmTC, ok := r.Get("textcomp", "vllm"); ok {
			h["textcomp-vllm-ms"] = float64(vllmTC.Latency) / float64(time.Millisecond)
		}
		pieAS, okA := r.Get("attnsink", "pie")
		sllm, okB := r.Get("attnsink", "streamingllm")
		if okA && okB && sllm.Throughput > 0 {
			h["attnsink-speedup-x"] = pieAS.Throughput / sllm.Throughput
		}
		return r.Table(), h
	})
	run("fig9", func() (string, map[string]float64) {
		r := eval.Figure9(o)
		first, last := r.Points[0], r.Points[len(r.Points)-1]
		return r.Table(), map[string]float64{
			"warm-1-ms":   float64(first.Warm) / float64(time.Millisecond),
			"cold-1-ms":   float64(first.Cold) / float64(time.Millisecond),
			"warm-max-ms": float64(last.Warm) / float64(time.Millisecond),
			"cold-max-ms": float64(last.Cold) / float64(time.Millisecond),
		}
	})
	run("fig10", func() (string, map[string]float64) {
		r := eval.Figure10(o)
		first, last := r.Points[0], r.Points[len(r.Points)-1]
		return r.Table(), map[string]float64{
			"control-1-us":   float64(first.ControlLayer) / float64(time.Microsecond),
			"control-max-us": float64(last.ControlLayer) / float64(time.Microsecond),
			"infer-1-us":     float64(first.InferenceLayer) / float64(time.Microsecond),
			"infer-max-us":   float64(last.InferenceLayer) / float64(time.Microsecond),
		}
	})
	run("fig11", func() (string, map[string]float64) {
		r := eval.Figure11(o)
		h := map[string]float64{}
		for _, row := range r.Rows {
			h[row.Task+"-infer-per-tok"] = row.InferCalls
			h[row.Task+"-control-per-tok"] = row.ControlCalls
		}
		return r.Table(), h
	})
	run("table3", func() (string, map[string]float64) {
		r := eval.Table3(o)
		return r.Table(), map[string]float64{
			"vllm-tpot-ms":    float64(r.VLLMTPOT) / float64(time.Millisecond),
			"pie-tpot-ms":     float64(r.PieTPOT) / float64(time.Millisecond),
			"sampling-gap-ms": float64(r.SamplingGap) / float64(time.Millisecond),
		}
	})
	run("table4", func() (string, map[string]float64) {
		r := eval.Table4(o)
		h := map[string]float64{}
		for _, row := range r.Rows {
			h[row.Params+"-pie-ms"] = float64(row.Pie) / float64(time.Millisecond)
			h[row.Params+"-vllm-ms"] = float64(row.VLLM) / float64(time.Millisecond)
			h[row.Params+"-overhead-pct"] = row.Percent
		}
		return r.Table(), h
	})
	run("table5", func() (string, map[string]float64) {
		r := eval.Table5(o)
		h := map[string]float64{}
		for _, row := range r.Rows {
			h[row.Policy+"-req-per-sec"] = row.Throughput
		}
		return r.Table(), h
	})
	if want["cluster"] {
		// The replica-scaling and offload sweeps are opt-in (-cluster /
		// -offload or -exp): they are the experiments beyond the paper's
		// own evaluation.
		run("cluster", clusterRun(o))
	}
	if want["offload"] {
		run("offload", offloadRun(o))
	}
	if want["coldstart"] {
		run("coldstart", coldstartRun(o))
	}
	if want["faults"] {
		run("faults", faultsRun(o))
	}
	if want["slo"] {
		run("slo", sloRun(o))
	}
	if want["pd"] {
		run("pd", pdRun(o))
	}
	if want["shard"] {
		run("shard", shardRun(o))
	}
	if want["fleet"] {
		run("fleet", fleetRun(o))
	}

	if len(rep.Experiments) == 0 {
		fmt.Fprintln(os.Stderr, "no experiments selected")
		os.Exit(2)
	}

	wall := time.Since(suiteStart)
	rep.TotalWallMS = float64(wall) / float64(time.Millisecond)
	rep.TotalEvents = sim.TotalEvents() - eventsStart
	rep.EventsPerSec = float64(rep.TotalEvents) / wall.Seconds()
	fmt.Printf("suite: %v wall time, %d virtual events, %.0f events/sec (gomaxprocs=%d)\n",
		wall.Round(time.Millisecond), rep.TotalEvents, rep.EventsPerSec, rep.GoMaxProcs)

	if writeReport {
		blob, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, "pie-bench: marshal report:", err)
			os.Exit(1)
		}
		if err := os.WriteFile(*jsonPath, append(blob, '\n'), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "pie-bench: write report:", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", *jsonPath)
	}
}

// offloadRun adapts the tiered-KV offload sweep to the experiment harness.
func offloadRun(o eval.Options) func() (string, map[string]float64) {
	return func() (string, map[string]float64) {
		r := eval.OffloadSweep(o)
		h := map[string]float64{}
		if p, ok := r.Get(2, 1.0); ok {
			h["effcap-2x-offload-x"] = p.EffCapacity
			h["ttft-2x-offload-ms"] = float64(p.TTFT) / float64(time.Millisecond)
			h["swapout-2x-offload-pages"] = float64(p.SwapOutPages)
			h["failures-2x-offload"] = float64(p.Failures)
		}
		if p, ok := r.Get(2, 0); ok {
			h["terms-2x-none"] = float64(p.Terminations)
		}
		if p, ok := r.Get(1, 0); ok {
			h["ttft-1x-none-ms"] = float64(p.TTFT) / float64(time.Millisecond)
		}
		return r.Table(), h
	}
}

// coldstartRun adapts the deployable-artifact launch sweep to the
// experiment harness.
func coldstartRun(o eval.Options) func() (string, map[string]float64) {
	return func() (string, map[string]float64) {
		r := eval.ColdstartSweep(o)
		return r.Table(), map[string]float64{
			"cold-launch-ms":     float64(r.Cold) / float64(time.Millisecond),
			"warm-launch-ms":     float64(r.Warm) / float64(time.Millisecond),
			"cold-warm-gap-x":    r.Ratio,
			"rr-cold-launches":   float64(r.RR.ColdLaunches),
			"pa-cold-launches":   float64(r.PA.ColdLaunches),
			"rr-mean-launch-ms":  float64(r.RR.MeanLaunch) / float64(time.Millisecond),
			"pa-mean-launch-ms":  float64(r.PA.MeanLaunch) / float64(time.Millisecond),
			"pa-vs-rr-speedup-x": r.PA.ReqPerSec / r.RR.ReqPerSec,
		}
	}
}

// faultsRun adapts the fault-tolerance chaos experiment to the harness.
func faultsRun(o eval.Options) func() (string, map[string]float64) {
	return func() (string, map[string]float64) {
		r := eval.FaultsSweep(o)
		return r.Table(), map[string]float64{
			"replicas-lost":       float64(r.Faulted.ReplicasLost),
			"detect-ms":           float64(r.Faulted.DetectTime) / float64(time.Millisecond),
			"requeues":            float64(r.Faulted.Requeues),
			"sheds":               float64(r.Faulted.Sheds),
			"leaked-pages":        float64(r.Faulted.LeakedPages),
			"hp-goodput-retained": r.GoodputRetained,
			"baseline-hp-per-sec": r.Baseline.HPGoodput,
			"faulted-hp-per-sec":  r.Faulted.HPGoodput,
			"faulted-hp-failed":   float64(r.Faulted.HPFailed),
			"faulted-be-failed":   float64(r.Faulted.BEFailed),
		}
	}
}

// sloRun adapts the SLO-aware service-class scaling sweep to the
// experiment harness. Headline metrics come from the high-load level,
// where the contrast between the saturation-guarded scaler and the
// queue-depth baseline lives; the low-load level contributes the
// scale-to-zero cost numbers.
func sloRun(o eval.Options) func() (string, map[string]float64) {
	return func() (string, map[string]float64) {
		r := eval.SLOSweep(o)
		high := r.Levels[len(r.Levels)-1]
		low := r.Levels[0]
		return r.Table(), map[string]float64{
			"slo-steady-ttft-attain":  high.SLO.SteadyTTFTAttain,
			"base-steady-ttft-attain": high.Baseline.SteadyTTFTAttain,
			"slo-cost-units":          high.SLO.CostUnits,
			"base-cost-units":         high.Baseline.CostUnits,
			"naive-cost-units":        high.SLO.NaiveCost,
			"degradations":            float64(high.SLO.BatchDegraded),
			"model-downgrades":        float64(high.SLO.ModelDowngrades),
			"base-be-sheds":           float64(high.Baseline.BEShed),
			"slo-be-done":             float64(high.SLO.BEDone),
			"scale-ups":               float64(high.SLO.ScaleUps),
			"low-slo-cost-units":      low.SLO.CostUnits,
		}
	}
}

// pdRun adapts the prefill/decode disaggregation sweep to the harness.
// Headline metrics come from the best mix: the one with the largest
// interactive TTFT advantage that gives up no SLO goodput.
func pdRun(o eval.Options) func() (string, map[string]float64) {
	return func() (string, map[string]float64) {
		r := eval.PDSweep(o)
		best := r.BestMix()
		return r.Table(), map[string]float64{
			"disagg-ttft-p95-ms":  float64(best.Disagg.IntTTFTP95) / float64(time.Millisecond),
			"unified-ttft-p95-ms": float64(best.Unified.IntTTFTP95) / float64(time.Millisecond),
			"ttft-speedup-x":      best.TTFTSpeedup(),
			"disagg-goodput":      best.Disagg.Goodput,
			"unified-goodput":     best.Unified.Goodput,
			"disagg-thru":         best.Disagg.Throughput,
			"unified-thru":        best.Unified.Throughput,
			"handoffs":            float64(best.Disagg.Handoffs),
			"handoff-pages":       float64(best.Disagg.HandoffPages),
			"handoff-queued":      float64(best.Disagg.HandoffQueued),
			"handoff-denied":      float64(best.Disagg.HandoffDenied),
			"leaked-pages":        float64(best.Disagg.LeakedPages),
		}
	}
}

// shardRun adapts the sharded-core fleet scaling sweep to the harness.
// The gated headline carries only virtual-time-deterministic values:
// events/sec and the serial-vs-parallel speedup are wall-clock numbers
// that vary with machine load and GOMAXPROCS, so they appear in the
// printed table but never in the headline map the bench gate compares.
func shardRun(o eval.Options) func() (string, map[string]float64) {
	return func() (string, map[string]float64) {
		r := eval.ShardSweep(o)
		h := map[string]float64{
			"replicas-max": float64(r.MaxReplicas),
		}
		if r.Deterministic {
			h["deterministic"] = 1
		}
		for _, p := range r.Sweep {
			h[fmt.Sprintf("fleet-%d-done", p.Replicas)] = float64(p.Completions)
			h[fmt.Sprintf("fleet-%d-events", p.Replicas)] = float64(p.Events)
		}
		last := r.Sweep[len(r.Sweep)-1]
		h["fleet-max-requeues"] = float64(last.Requeues)
		h["fleet-max-avg-lat-ms"] = float64(last.AvgLatency) / float64(time.Millisecond)
		return r.Table(), h
	}
}

// fleetRun adapts the fleet-manifest experiment to the harness: a rolling
// pinned-program upgrade vs a naive restart under identical load, plus a
// pool-count hot reload, all driven by the reconciling controller.
func fleetRun(o eval.Options) func() (string, map[string]float64) {
	return func() (string, map[string]float64) {
		r := eval.FleetSweep(o)
		h := map[string]float64{
			"steady-window-p95-ms":  float64(r.Steady.WindowP95) / float64(time.Millisecond),
			"rolling-window-p95-ms": float64(r.Rolling.WindowP95) / float64(time.Millisecond),
			"naive-window-p95-ms":   float64(r.Naive.WindowP95) / float64(time.Millisecond),
			"rolling-vs-steady-x":   r.RollingRatio,
			"naive-vs-steady-x":     r.NaiveRatio,
			"rolling-done":          float64(r.Rolling.Done),
			"rolling-failed":        float64(r.Rolling.Failed),
			"rolling-requeues":      float64(r.Rolling.UpgradeRequeues),
			"naive-requeues":        float64(r.Naive.UpgradeRequeues),
			"rolling-prewarms":      float64(r.Rolling.Prewarms),
			"reload-final-serving":  float64(r.Reload.FinalServing),
			"reload-dropped":        float64(r.Reload.Dropped),
			"reload-done":           float64(r.Reload.Done),
		}
		if r.Deterministic {
			h["deterministic"] = 1
		}
		if r.Rolling.Converged && r.Naive.Converged && r.Reload.Converged {
			h["converged"] = 1
		}
		return r.Table(), h
	}
}

// clusterRun adapts the replica-scaling sweep to the experiment harness.
func clusterRun(o eval.Options) func() (string, map[string]float64) {
	return func() (string, map[string]float64) {
		r := eval.ClusterSweep(o)
		h := map[string]float64{}
		for _, p := range r.Sweep {
			h[fmt.Sprintf("batch-%d-tok-per-sec", p.Replicas)] = p.TokensPerSec
		}
		if len(r.Sweep) > 0 && r.Sweep[0].TokensPerSec > 0 {
			last := r.Sweep[len(r.Sweep)-1]
			h["scaling-x"] = last.TokensPerSec / r.Sweep[0].TokensPerSec
			h["batch-1-ttft-ms"] = float64(r.Sweep[0].TTFT) / float64(time.Millisecond)
			h["batch-1-tpot-ms"] = float64(r.Sweep[0].TPOT) / float64(time.Millisecond)
		}
		if r.AffinityRR.ReqPerSec > 0 {
			h["affinity-speedup-x"] = r.AffinityKV.ReqPerSec / r.AffinityRR.ReqPerSec
		}
		h["autoscale-ups"] = float64(r.Auto.ScaleUps)
		h["autoscale-drains-done"] = float64(r.Auto.DrainDone)
		h["autoscale-final-active"] = float64(r.Auto.FinalActive)
		return r.Table(), h
	}
}
