package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"pie"
)

// testManifest is the boot document the fleet-surface tests run on.
const testManifest = `{
  "schema": 1,
  "seed": 7,
  "placement": "least-loaded",
  "pools": [{"name": "main", "count": 2, "max": 4}],
  "classes": [{"name": "interactive", "ttft": "250ms", "priority": 10}],
  "programs": [{"name": "text_completion", "version": "1.0.0", "class": "interactive"}],
  "kv": {"host_ratio": 2.0},
  "reconcile": {"interval": "2ms"}
}`

func writeManifest(t *testing.T, doc string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "fleet.json")
	if err := os.WriteFile(path, []byte(doc), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestBuildConfigManifestPrecedence is the flag/manifest precedence
// regression: explicitly set flags override manifest values; flags left
// at their defaults never do.
func TestBuildConfigManifestPrecedence(t *testing.T) {
	fs := func() *flag.FlagSet { return flag.NewFlagSet("test", flag.ContinueOnError) }
	path := writeManifest(t, testManifest)

	// Manifest alone: every value comes from the document, including the
	// seed — the -seed flag's default (42) must NOT clobber manifest seed 7.
	opts, err := buildConfig(fs(), []string{"-config", path})
	if err != nil {
		t.Fatal(err)
	}
	cfg := opts.Cfg
	if cfg.Fleet == nil || cfg.Seed != 7 || cfg.Replicas != 2 {
		t.Fatalf("manifest boot: seed=%d replicas=%d fleet=%v", cfg.Seed, cfg.Replicas, cfg.Fleet)
	}
	if cfg.Placement != pie.PlaceLeastLoaded || cfg.HostKVRatio != 2.0 {
		t.Fatalf("manifest policies lost: placement=%v kv=%v", cfg.Placement, cfg.HostKVRatio)
	}
	if len(cfg.Classes) != 1 || cfg.Classes[0].Name != "interactive" {
		t.Fatalf("manifest classes lost: %+v", cfg.Classes)
	}

	// Explicitly set scalar flags win over the manifest.
	opts, err = buildConfig(fs(), []string{"-config", path, "-seed", "99", "-placement", "rr", "-host-kv-ratio", "3"})
	if err != nil {
		t.Fatal(err)
	}
	cfg = opts.Cfg
	if cfg.Seed != 99 || cfg.Placement != pie.PlaceRoundRobin || cfg.HostKVRatio != 3 {
		t.Fatalf("explicit flags must override the manifest: seed=%d placement=%v kv=%v",
			cfg.Seed, cfg.Placement, cfg.HostKVRatio)
	}
	// The manifest snapshot keeps its own values: the flag override is a
	// runtime layer, not a rewrite of desired state.
	if cfg.Fleet.Seed != 7 {
		t.Fatalf("flag override mutated the manifest: %+v", cfg.Fleet)
	}

	// Topology flags conflict with -config outright.
	for _, args := range [][]string{
		{"-config", path, "-replicas", "4"},
		{"-config", path, "-variants", "l4:cost=1"},
		{"-config", path, "-roles", "prefill:count=1;decode"},
		{"-config", path, "-classes", "gold:prio=1"},
		{"-config", path, "-scaler-max", "4"},
		{"-config", path, "-autoscale-max", "4"},
	} {
		if _, err := buildConfig(fs(), args); err == nil || !strings.Contains(err.Error(), "conflicts with -config") {
			t.Fatalf("%v: err = %v, want topology conflict", args, err)
		}
	}

	// Unknown flags surface the flag package's own error.
	badFS := flag.NewFlagSet("test", flag.ContinueOnError)
	badFS.SetOutput(io.Discard)
	if _, err := buildConfig(badFS, []string{"-no-such-flag"}); err == nil {
		t.Fatal("unknown flag accepted")
	}

	// Bad documents fail typed at build time.
	bad := writeManifest(t, `{"schema": 1, "pools": []}`)
	if _, err := buildConfig(fs(), []string{"-config", bad}); err == nil {
		t.Fatal("invalid manifest accepted")
	}
	if _, err := buildConfig(fs(), []string{"-config", filepath.Join(t.TempDir(), "missing.json")}); err == nil {
		t.Fatal("missing manifest file accepted")
	}

	// -validate is carried through for main to act on.
	opts, err = buildConfig(fs(), []string{"-config", path, "-validate"})
	if err != nil || !opts.Validate || opts.ConfigPath != path {
		t.Fatalf("validate mode: %+v, %v", opts, err)
	}
}

// TestFleetEndpoint drives GET and POST /v1/fleet against a
// manifest-booted server: status reads, a hot count change, and the typed
// rejection ladder.
func TestFleetEndpoint(t *testing.T) {
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	path := writeManifest(t, testManifest)
	opts, err := buildConfig(fs, []string{"-config", path})
	if err != nil {
		t.Fatal(err)
	}
	_, ts := startTestServer(t, opts.Cfg)

	var got struct {
		Fleet   map[string]interface{} `json:"fleet"`
		Desired map[string]interface{} `json:"desired"`
	}
	if resp := getJSON(t, ts.URL+"/v1/fleet", &got); resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /v1/fleet: %d", resp.StatusCode)
	}
	if got.Fleet["generation"] != float64(0) || got.Desired["schema"] != float64(1) {
		t.Fatalf("fleet status = %+v", got)
	}

	post := func(doc string) (*http.Response, map[string]interface{}) {
		resp, err := http.Post(ts.URL+"/v1/fleet", "application/json", bytes.NewReader([]byte(doc)))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		raw, _ := io.ReadAll(resp.Body)
		var body map[string]interface{}
		_ = json.Unmarshal(raw, &body)
		return resp, body
	}

	// A count change applies and bumps the generation.
	grown := strings.Replace(testManifest, `"count": 2`, `"count": 4`, 1)
	resp, body := post(grown)
	if resp.StatusCode != http.StatusOK || body["status"] != "applied" {
		t.Fatalf("grow: %d %v", resp.StatusCode, body)
	}
	if fl, ok := body["fleet"].(map[string]interface{}); !ok || fl["generation"] != float64(1) {
		t.Fatalf("grow status: %v", body)
	}

	// The typed rejection ladder.
	cases := []struct {
		doc    string
		status int
		code   string
	}{
		{strings.Replace(testManifest, `"main"`, `"other"`, 1), http.StatusConflict, "immutable_field"},
		{strings.Replace(testManifest, `"1.0.0"`, `"latest"`, 1), http.StatusBadRequest, "bad_version"},
		{strings.Replace(testManifest, `"least-loaded"`, `"warmest"`, 1), http.StatusBadRequest, "unknown_reference"},
		{`{"schema": 1, "pools": []}`, http.StatusBadRequest, "ambiguous_pool"},
		{`{not json`, http.StatusBadRequest, "invalid_manifest"},
	}
	for _, tc := range cases {
		resp, body := post(tc.doc)
		errObj, _ := body["error"].(map[string]interface{})
		if resp.StatusCode != tc.status || errObj["code"] != tc.code {
			t.Fatalf("POST %q: %d %v, want %d %s", tc.doc[:24], resp.StatusCode, body, tc.status, tc.code)
		}
	}

	// Other methods are refused.
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/fleet", nil)
	if resp, err := http.DefaultClient.Do(req); err != nil || resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("DELETE /v1/fleet: %v %v", resp, err)
	}
}

// TestFleetEndpointNotManaged: a flag-booted server answers 404 typed.
func TestFleetEndpointNotManaged(t *testing.T) {
	_, ts := startTestServer(t, pie.Config{Seed: 1, Replicas: 1})
	resp := getJSON(t, ts.URL+"/v1/fleet", nil)
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("GET /v1/fleet on flag-booted server: %d, want 404", resp.StatusCode)
	}
	resp, err := http.Post(ts.URL+"/v1/fleet", "application/json", strings.NewReader(testManifest))
	if err != nil || resp.StatusCode != http.StatusNotFound {
		t.Fatalf("POST /v1/fleet on flag-booted server: %v %v", resp, err)
	}
}

// TestReloadFleet is the SIGHUP path: re-read the boot manifest from disk
// and hot-apply it.
func TestReloadFleet(t *testing.T) {
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	path := writeManifest(t, testManifest)
	opts, err := buildConfig(fs, []string{"-config", path})
	if err != nil {
		t.Fatal(err)
	}
	s, ts := startTestServer(t, opts.Cfg)
	_ = ts

	// Rewrite the file with a new count, then reload.
	if err := os.WriteFile(path, []byte(strings.Replace(testManifest, `"count": 2`, `"count": 3`, 1)), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := s.reloadFleet(path); err != nil {
		t.Fatalf("reloadFleet: %v", err)
	}
	var st struct {
		Fleet map[string]interface{} `json:"fleet"`
	}
	getJSON(t, ts.URL+"/v1/fleet", &st)
	if st.Fleet["generation"] != float64(1) {
		t.Fatalf("generation after reload = %v", st.Fleet["generation"])
	}

	// A broken file fails without touching the running fleet.
	if err := os.WriteFile(path, []byte(`{broken`), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := s.reloadFleet(path); err == nil {
		t.Fatal("reloadFleet accepted a broken document")
	}
	getJSON(t, ts.URL+"/v1/fleet", &st)
	if st.Fleet["generation"] != float64(1) {
		t.Fatalf("failed reload changed generation: %v", st.Fleet["generation"])
	}
}
