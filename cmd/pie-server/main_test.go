package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"pie"
)

// startTestServer brings up the full serving path a real deployment uses:
// external-clock engine, running event loop, HTTP mux. This exercises the
// Inject path from real goroutines — the external-mode regression fixed in
// PR 1 (the clock must not finish itself while only daemons are live).
func startTestServer(t *testing.T, cfg pie.Config) (*server, *httptest.Server) {
	t.Helper()
	s := newServer(newEngine(cfg))
	ts := httptest.NewServer(s.mux())
	t.Cleanup(ts.Close)
	return s, ts
}

func getJSON(t *testing.T, url string, out interface{}) *http.Response {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if out != nil && resp.StatusCode == http.StatusOK {
		if err := json.Unmarshal(body, out); err != nil {
			t.Fatalf("GET %s: bad JSON %q: %v", url, body, err)
		}
	}
	return resp
}

func TestLaunchRecvWaitRoundTrip(t *testing.T) {
	_, ts := startTestServer(t, pie.Config{Seed: 7})

	resp, err := http.Post(ts.URL+"/launch?program=text_completion", "application/json",
		strings.NewReader(`{"prompt":"Hello, ","max_tokens":4,"first_token_ack":true}`))
	if err != nil {
		t.Fatalf("launch: %v", err)
	}
	var launched struct {
		ID      int    `json:"id"`
		Program string `json:"program"`
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("launch: status %d: %s", resp.StatusCode, body)
	}
	if err := json.Unmarshal(body, &launched); err != nil {
		t.Fatalf("launch: bad JSON %q: %v", body, err)
	}
	if launched.ID != 1 || launched.Program != "text_completion" {
		t.Fatalf("launch: got %+v", launched)
	}

	// First message is the first-token ack, second the completion text.
	var msg struct {
		Message string `json:"message"`
	}
	if resp := getJSON(t, fmt.Sprintf("%s/recv?id=%d", ts.URL, launched.ID), &msg); resp.StatusCode != http.StatusOK {
		t.Fatalf("recv: status %d", resp.StatusCode)
	}
	if msg.Message != "first-token" {
		t.Fatalf("recv: got %q, want first-token ack", msg.Message)
	}
	if resp := getJSON(t, fmt.Sprintf("%s/recv?id=%d", ts.URL, launched.ID), &msg); resp.StatusCode != http.StatusOK {
		t.Fatalf("recv 2: status %d", resp.StatusCode)
	}
	if msg.Message == "" {
		t.Fatal("recv 2: empty completion text")
	}

	var waited struct {
		OutputTokens int    `json:"outputTokens"`
		InferCalls   int    `json:"inferCalls"`
		VirtualTime  string `json:"virtualTime"`
		Error        string `json:"error"`
	}
	if resp := getJSON(t, fmt.Sprintf("%s/wait?id=%d", ts.URL, launched.ID), &waited); resp.StatusCode != http.StatusOK {
		t.Fatalf("wait: status %d", resp.StatusCode)
	}
	if waited.Error != "" {
		t.Fatalf("wait: inferlet error %q", waited.Error)
	}
	if waited.OutputTokens != 4 {
		t.Fatalf("wait: outputTokens = %d, want 4", waited.OutputTokens)
	}
	if waited.InferCalls == 0 || waited.VirtualTime == "" {
		t.Fatalf("wait: missing instrumentation: %+v", waited)
	}
}

func TestSendRecvEcho(t *testing.T) {
	_, ts := startTestServer(t, pie.Config{Seed: 7})

	// agent_react waits for a task message before acting; use
	// text_completion's ack probe instead: Ack sends before generation.
	resp, err := http.Post(ts.URL+"/launch?program=text_completion", "application/json",
		strings.NewReader(`{"prompt":"Hi","max_tokens":2,"ack":true}`))
	if err != nil {
		t.Fatalf("launch: %v", err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()

	var msg struct {
		Message string `json:"message"`
	}
	getJSON(t, ts.URL+"/recv?id=1", &msg)
	if msg.Message != "ack" {
		t.Fatalf("recv: got %q, want ack", msg.Message)
	}
	// Send is fire-and-forget into the inferlet mailbox; the handler must
	// still return OK even though text_completion never reads it.
	sresp, err := http.Post(ts.URL+"/send?id=1", "text/plain", strings.NewReader("ping"))
	if err != nil || sresp.StatusCode != http.StatusOK {
		t.Fatalf("send: %v status %v", err, sresp.Status)
	}
	io.Copy(io.Discard, sresp.Body)
	sresp.Body.Close()
}

func TestStatsReportsReplicas(t *testing.T) {
	_, ts := startTestServer(t, pie.Config{
		Seed:      7,
		Replicas:  2,
		Placement: pie.PlaceRoundRobin,
	})

	// Two launches round-robin across both replicas.
	for i := 0; i < 2; i++ {
		resp, err := http.Post(ts.URL+"/launch?program=text_completion", "application/json",
			strings.NewReader(`{"prompt":"Hi","max_tokens":2}`))
		if err != nil {
			t.Fatalf("launch %d: %v", i, err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}
	getJSON(t, ts.URL+"/wait?id=1", nil)
	getJSON(t, ts.URL+"/wait?id=2", nil)

	var stats struct {
		Engine struct {
			Launches       int
			Batches        int
			ActiveReplicas int
		} `json:"engine"`
		Replicas []struct {
			ID         int    `json:"id"`
			Device     string `json:"device"`
			Active     bool   `json:"active"`
			Placements int    `json:"placements"`
			Batches    int    `json:"batches"`
		} `json:"replicas"`
	}
	if resp := getJSON(t, ts.URL+"/stats", &stats); resp.StatusCode != http.StatusOK {
		t.Fatalf("stats: status %d", resp.StatusCode)
	}
	if stats.Engine.Launches != 2 || stats.Engine.ActiveReplicas != 2 {
		t.Fatalf("stats: engine = %+v", stats.Engine)
	}
	if len(stats.Replicas) != 2 {
		t.Fatalf("stats: %d replica entries, want 2", len(stats.Replicas))
	}
	for i, r := range stats.Replicas {
		if r.ID != i || !r.Active || r.Device != fmt.Sprintf("l4-%d", i) {
			t.Fatalf("stats: replica %d = %+v", i, r)
		}
		if r.Placements != 1 {
			t.Fatalf("stats: replica %d placements = %d, want 1 (round-robin)", i, r.Placements)
		}
		if r.Batches == 0 {
			t.Fatalf("stats: replica %d ran no batches", i)
		}
	}
}

// errBody decodes the structured {"error":{code,message}} body.
type errBody struct {
	Error struct {
		Code    string `json:"code"`
		Message string `json:"message"`
	} `json:"error"`
}

func TestErrorPaths(t *testing.T) {
	_, ts := startTestServer(t, pie.Config{Seed: 7})

	resp, err := http.Post(ts.URL+"/v1/launch?program=no_such_program", "application/json", nil)
	if err != nil {
		t.Fatalf("launch: %v", err)
	}
	var launchErr errBody
	blob, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("launch unknown program: status %d, want 404", resp.StatusCode)
	}
	if err := json.Unmarshal(blob, &launchErr); err != nil || launchErr.Error.Code != "no_such_program" {
		t.Fatalf("launch error body %s (code %q), want no_such_program", blob, launchErr.Error.Code)
	}
	if resp := getJSON(t, ts.URL+"/v1/recv?id=99", nil); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("recv unknown id: status %d, want 404", resp.StatusCode)
	}
	if resp := getJSON(t, ts.URL+"/v1/wait?id=notanumber", nil); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("wait bad id: status %d, want 400", resp.StatusCode)
	}
	if resp := getJSON(t, ts.URL+"/v1/programs", nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("programs: status %d", resp.StatusCode)
	}
}

// TestLegacyAliasDeprecated: the unversioned paths keep working, answer
// identically to /v1/, and carry the Deprecation header.
func TestLegacyAliasDeprecated(t *testing.T) {
	_, ts := startTestServer(t, pie.Config{Seed: 7})

	resp, err := http.Post(ts.URL+"/launch?program=text_completion", "application/json",
		strings.NewReader(`{"prompt":"Hi","max_tokens":2}`))
	if err != nil {
		t.Fatalf("legacy launch: %v", err)
	}
	var launched struct {
		ID int `json:"id"`
	}
	blob, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("legacy launch: status %d: %s", resp.StatusCode, blob)
	}
	if resp.Header.Get("Deprecation") != "true" {
		t.Fatal("legacy alias missing Deprecation header")
	}
	if !strings.Contains(resp.Header.Get("Link"), "/v1/launch") {
		t.Fatalf("legacy alias Link header %q lacks successor", resp.Header.Get("Link"))
	}
	if err := json.Unmarshal(blob, &launched); err != nil || launched.ID != 1 {
		t.Fatalf("legacy launch body %s", blob)
	}
	// Legacy error paths share the structured bodies.
	resp = getJSON(t, ts.URL+"/recv?id=99", nil)
	if resp.StatusCode != http.StatusNotFound || resp.Header.Get("Deprecation") != "true" {
		t.Fatalf("legacy recv unknown id: status %d, deprecation %q",
			resp.StatusCode, resp.Header.Get("Deprecation"))
	}
	getJSON(t, ts.URL+"/wait?id=1", nil)
}

// TestRecvAfterFinishGone covers the message path on a finished inferlet:
// queued messages stay readable, the closed mailbox reports 410, and a
// waited-on run is evicted entirely (404).
func TestRecvAfterFinishGone(t *testing.T) {
	_, ts := startTestServer(t, pie.Config{Seed: 7})

	resp, err := http.Post(ts.URL+"/v1/launch?program=text_completion", "application/json",
		strings.NewReader(`{"prompt":"Hi","max_tokens":2}`))
	if err != nil {
		t.Fatalf("launch: %v", err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()

	// The completion text queues once the inferlet finishes.
	var msg struct {
		Message string `json:"message"`
	}
	if resp := getJSON(t, ts.URL+"/v1/recv?id=1", &msg); resp.StatusCode != http.StatusOK {
		t.Fatalf("recv queued: status %d", resp.StatusCode)
	}
	// Nothing else will ever arrive: the mailbox is closed.
	if resp := getJSON(t, ts.URL+"/v1/recv?id=1", nil); resp.StatusCode != http.StatusGone {
		t.Fatalf("recv drained: status %d, want 410", resp.StatusCode)
	}
	// Wait reports and evicts; the id is gone afterwards.
	if resp := getJSON(t, ts.URL+"/v1/wait?id=1", nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("wait: status %d", resp.StatusCode)
	}
	if resp := getJSON(t, ts.URL+"/v1/recv?id=1", nil); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("recv after wait eviction: status %d, want 404", resp.StatusCode)
	}
}

// TestRunTableEviction: /v1/wait and /v1/close both shrink the handle
// table, so a long-lived server does not leak completed runs.
func TestRunTableEviction(t *testing.T) {
	s, ts := startTestServer(t, pie.Config{Seed: 7})

	for i := 0; i < 3; i++ {
		resp, err := http.Post(ts.URL+"/v1/launch?program=text_completion", "application/json",
			strings.NewReader(`{"prompt":"Hi","max_tokens":2}`))
		if err != nil {
			t.Fatalf("launch %d: %v", i, err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}
	if n := s.liveRuns(); n != 3 {
		t.Fatalf("live runs = %d, want 3", n)
	}
	getJSON(t, ts.URL+"/v1/wait?id=1", nil)
	if n := s.liveRuns(); n != 2 {
		t.Fatalf("live runs after wait = %d, want 2", n)
	}
	var closed struct {
		Status string `json:"status"`
		ID     int    `json:"id"`
	}
	if resp := getJSON(t, ts.URL+"/v1/close?id=2", &closed); resp.StatusCode != http.StatusOK {
		t.Fatalf("close: status %d", resp.StatusCode)
	}
	if closed.Status != "closed" || closed.ID != 2 {
		t.Fatalf("close body %+v", closed)
	}
	if n := s.liveRuns(); n != 1 {
		t.Fatalf("live runs after close = %d, want 1", n)
	}
	// Closing twice is a 404: the handle is gone.
	if resp := getJSON(t, ts.URL+"/v1/close?id=2", nil); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("double close: status %d, want 404", resp.StatusCode)
	}
	getJSON(t, ts.URL+"/v1/wait?id=3", nil)
	if n := s.liveRuns(); n != 0 {
		t.Fatalf("live runs after full drain = %d, want 0", n)
	}
}

// TestSSEStream: /v1/stream delivers every inferlet message as an SSE
// data event, then event: end when the mailbox closes.
func TestSSEStream(t *testing.T) {
	_, ts := startTestServer(t, pie.Config{Seed: 7})

	resp, err := http.Post(ts.URL+"/v1/launch?program=text_completion", "application/json",
		strings.NewReader(`{"prompt":"Hello, ","max_tokens":4,"first_token_ack":true}`))
	if err != nil {
		t.Fatalf("launch: %v", err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()

	sresp, err := http.Get(ts.URL + "/v1/stream?id=1")
	if err != nil {
		t.Fatalf("stream: %v", err)
	}
	defer sresp.Body.Close()
	if ct := sresp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("stream content type %q", ct)
	}
	body, err := io.ReadAll(sresp.Body) // server closes at event: end
	if err != nil {
		t.Fatalf("stream read: %v", err)
	}
	events := string(body)
	if !strings.HasPrefix(events, "data: first-token\n\n") {
		t.Fatalf("stream did not lead with the first-token ack:\n%s", events)
	}
	if !strings.Contains(events, "event: end\n") {
		t.Fatalf("stream did not terminate with event: end:\n%s", events)
	}
	// Two data events (ack + completion text) precede the end.
	if n := strings.Count(events, "data: "); n < 3 { // 2 messages + end's data line
		t.Fatalf("stream carried %d data lines, want >= 3:\n%s", n, events)
	}
	// Streaming does not evict: wait still knows the run.
	if resp := getJSON(t, ts.URL+"/v1/wait?id=1", nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("wait after stream: status %d", resp.StatusCode)
	}
}

// TestProgramsManifestListing: /v1/programs reports the versioned
// registry with manifest details; ?name= narrows it, unknown names 404.
func TestProgramsManifestListing(t *testing.T) {
	_, ts := startTestServer(t, pie.Config{Seed: 7})

	var progs []struct {
		Name       string   `json:"name"`
		Version    string   `json:"version"`
		Latest     bool     `json:"latest"`
		BinarySize int      `json:"binary_size"`
		Traits     []string `json:"traits"`
	}
	if resp := getJSON(t, ts.URL+"/v1/programs", &progs); resp.StatusCode != http.StatusOK {
		t.Fatalf("programs: status %d", resp.StatusCode)
	}
	if len(progs) == 0 {
		t.Fatal("programs: empty registry")
	}
	found := false
	for _, p := range progs {
		if p.Name == "text_completion" {
			found = true
			if !p.Latest || p.Version == "" || p.BinarySize == 0 {
				t.Fatalf("text_completion entry incomplete: %+v", p)
			}
			if len(p.Traits) == 0 {
				t.Fatalf("text_completion manifest lists no required traits: %+v", p)
			}
		}
	}
	if !found {
		t.Fatal("programs: text_completion missing from listing")
	}

	progs = nil
	if resp := getJSON(t, ts.URL+"/v1/programs?name=text_completion", &progs); resp.StatusCode != http.StatusOK {
		t.Fatalf("programs?name=: status %d", resp.StatusCode)
	}
	if len(progs) != 1 || progs[0].Name != "text_completion" {
		t.Fatalf("programs?name= returned %+v", progs)
	}

	resp := getJSON(t, ts.URL+"/v1/programs?name=nope", nil)
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("programs unknown name: status %d, want 404", resp.StatusCode)
	}
}

// TestLaunchSpecBody: /v1/launch without ?program= takes a JSON launch
// spec (program reference, args, client tag), resolving name@version.
func TestLaunchSpecBody(t *testing.T) {
	_, ts := startTestServer(t, pie.Config{Seed: 7})

	resp, err := http.Post(ts.URL+"/v1/launch", "application/json",
		strings.NewReader(`{"program":"text_completion@1.0.0",`+
			`"args":["{\"prompt\":\"Hi\",\"max_tokens\":2}"],"client_tag":"tenant-7"}`))
	if err != nil {
		t.Fatalf("launch: %v", err)
	}
	blob, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("launch spec body: status %d: %s", resp.StatusCode, blob)
	}
	var launched struct {
		ID        int    `json:"id"`
		Program   string `json:"program"`
		Version   string `json:"version"`
		ClientTag string `json:"client_tag"`
	}
	if err := json.Unmarshal(blob, &launched); err != nil {
		t.Fatalf("launch spec body: bad JSON %s: %v", blob, err)
	}
	if launched.Program != "text_completion" || launched.Version != "1.0.0" || launched.ClientTag != "tenant-7" {
		t.Fatalf("launch spec body: got %+v", launched)
	}
	getJSON(t, fmt.Sprintf("%s/v1/wait?id=%d", ts.URL, launched.ID), nil)

	// Error bodies: malformed spec, missing program, unknown version.
	cases := []struct {
		body   string
		status int
		code   string
	}{
		{"not json", http.StatusBadRequest, "invalid_argument"},
		{`{"args":["x"]}`, http.StatusBadRequest, "invalid_argument"},
		{`{"program":"text_completion@9.9.9"}`, http.StatusNotFound, "no_such_program"},
		{`{"program":"text_completion","deadline_ms":-5}`, http.StatusBadRequest, "invalid_argument"},
	}
	for _, tc := range cases {
		resp, err := http.Post(ts.URL+"/v1/launch", "application/json", strings.NewReader(tc.body))
		if err != nil {
			t.Fatalf("launch %q: %v", tc.body, err)
		}
		var eb errBody
		blob, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != tc.status {
			t.Fatalf("launch %q: status %d, want %d (%s)", tc.body, resp.StatusCode, tc.status, blob)
		}
		if err := json.Unmarshal(blob, &eb); err != nil || eb.Error.Code != tc.code {
			t.Fatalf("launch %q: error body %s, want code %q", tc.body, blob, tc.code)
		}
	}
}

// TestAbortEndpoint: /v1/abort cancels a running inferlet (wait reports
// the abort), and its error bodies cover bad ids, unknown ids, and
// already-finished runs.
func TestAbortEndpoint(t *testing.T) {
	_, ts := startTestServer(t, pie.Config{Seed: 7})

	// A long generation so the abort lands mid-run.
	resp, err := http.Post(ts.URL+"/v1/launch?program=text_completion", "application/json",
		strings.NewReader(`{"prompt":"Hello, ","max_tokens":512}`))
	if err != nil {
		t.Fatalf("launch: %v", err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()

	var aborted struct {
		Status string `json:"status"`
		ID     int    `json:"id"`
	}
	if resp := getJSON(t, ts.URL+"/v1/abort?id=1", &aborted); resp.StatusCode != http.StatusOK {
		t.Fatalf("abort: status %d", resp.StatusCode)
	}
	if aborted.Status != "aborted" || aborted.ID != 1 {
		t.Fatalf("abort body %+v", aborted)
	}
	var waited struct {
		Error string `json:"error"`
	}
	if resp := getJSON(t, ts.URL+"/v1/wait?id=1", &waited); resp.StatusCode != http.StatusOK {
		t.Fatalf("wait after abort: status %d", resp.StatusCode)
	}
	if !strings.Contains(waited.Error, "aborted") {
		t.Fatalf("wait after abort: error %q, want abort reason", waited.Error)
	}

	// Error bodies.
	if resp := getJSON(t, ts.URL+"/v1/abort?id=notanumber", nil); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("abort bad id: status %d, want 400", resp.StatusCode)
	}
	if resp := getJSON(t, ts.URL+"/v1/abort?id=99", nil); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("abort unknown id: status %d, want 404", resp.StatusCode)
	}

	// Aborting a finished run is a structured conflict.
	resp, err = http.Post(ts.URL+"/v1/launch?program=text_completion", "application/json",
		strings.NewReader(`{"prompt":"Hi","max_tokens":2}`))
	if err != nil {
		t.Fatalf("launch 2: %v", err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	var msg struct {
		Message string `json:"message"`
	}
	getJSON(t, ts.URL+"/v1/recv?id=2", &msg) // generation done once the text arrives
	var eb errBody
	resp = getJSON(t, ts.URL+"/v1/abort?id=2", nil)
	blob, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("abort finished run: status %d, want 409", resp.StatusCode)
	}
	_ = blob
	resp2, err := http.Get(ts.URL + "/v1/abort?id=2")
	if err != nil {
		t.Fatalf("abort finished run again: %v", err)
	}
	blob2, _ := io.ReadAll(resp2.Body)
	resp2.Body.Close()
	if err := json.Unmarshal(blob2, &eb); err != nil || eb.Error.Code != "already_finished" {
		t.Fatalf("abort finished run: error body %s, want already_finished", blob2)
	}
}

// waitReplicasLost polls /v1/stats until the health monitor has declared
// at least n replicas dead. The external-mode clock free-runs between
// requests, so scheduled faults and their detection complete within a few
// wall milliseconds; the poll only absorbs scheduler jitter.
func waitReplicasLost(t *testing.T, ts *httptest.Server, n int) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		var doc struct {
			Engine struct {
				ReplicasLost int `json:"ReplicasLost"`
			} `json:"engine"`
		}
		getJSON(t, ts.URL+"/v1/stats", &doc)
		if doc.Engine.ReplicasLost >= n {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("health monitor never declared %d replica(s) dead", n)
}

// TestOverloadAndReplicaLostLaunchBodies: once the fault plan crash-stops
// the only replica and the health monitor declares it dead, a best-effort
// launch is shed by the saturation guard with a 429 "overloaded" body (and
// a Retry-After header), while a high-priority launch fails placement with
// a 503 "replica_lost" body.
func TestOverloadAndReplicaLostLaunchBodies(t *testing.T) {
	plan, err := pie.ParseFaultPlan("crash:0@1ms")
	if err != nil {
		t.Fatal(err)
	}
	_, ts := startTestServer(t, pie.Config{
		Seed:     7,
		Replicas: 1,
		Health:   pie.HealthConfig{Enabled: true, Interval: 2 * time.Millisecond},
		Shed:     pie.ShedConfig{Enabled: true},
		Faults:   plan,
	})
	waitReplicasLost(t, ts, 1)

	post := func(priority int) (*http.Response, []byte) {
		body := fmt.Sprintf(`{"program":"text_completion","args":["{\"prompt\":\"Hi\",\"max_tokens\":2}"],"priority":%d}`, priority)
		resp, err := http.Post(ts.URL+"/v1/launch", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatalf("launch: %v", err)
		}
		blob, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		return resp, blob
	}

	resp, blob := post(-1) // best-effort: shed
	var eb errBody
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("best-effort launch on dead cluster: status %d, want 429 (%s)", resp.StatusCode, blob)
	}
	if err := json.Unmarshal(blob, &eb); err != nil || eb.Error.Code != "overloaded" {
		t.Fatalf("shed body %s (code %q), want overloaded", blob, eb.Error.Code)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 response missing Retry-After header")
	}

	resp, blob = post(0) // high-priority: typed placement failure
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("launch on dead cluster: status %d, want 503 (%s)", resp.StatusCode, blob)
	}
	if err := json.Unmarshal(blob, &eb); err != nil || eb.Error.Code != "replica_lost" {
		t.Fatalf("dead-cluster body %s (code %q), want replica_lost", blob, eb.Error.Code)
	}
}

// TestWaitReportsReplicaLost: a hang fault freezes the only replica's
// device without failing health checks while it is idle (no outstanding
// work means no missed progress). The launch therefore places normally,
// its first inference call stalls forever, the health monitor times the
// replica out, and the parked /v1/wait returns a typed replica_lost error
// body instead of hanging.
func TestWaitReportsReplicaLost(t *testing.T) {
	plan, err := pie.ParseFaultPlan("hang:0@1ms")
	if err != nil {
		t.Fatal(err)
	}
	_, ts := startTestServer(t, pie.Config{
		Seed:     7,
		Replicas: 1,
		Health: pie.HealthConfig{Enabled: true, Interval: 2 * time.Millisecond,
			HangTimeout: 40 * time.Millisecond},
		Faults: plan,
	})

	resp, err := http.Post(ts.URL+"/v1/launch?program=text_completion", "application/json",
		strings.NewReader(`{"prompt":"Hi","max_tokens":4}`))
	if err != nil {
		t.Fatalf("launch: %v", err)
	}
	blob, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("launch on hung-but-undetected replica: status %d (%s)", resp.StatusCode, blob)
	}

	var waited struct {
		Error     string `json:"error"`
		ErrorCode string `json:"error_code"`
	}
	getJSON(t, ts.URL+"/v1/wait?id=1", &waited)
	if waited.ErrorCode != "replica_lost" {
		t.Fatalf("wait on hung replica: error %q code %q, want replica_lost", waited.Error, waited.ErrorCode)
	}
	if !strings.Contains(waited.Error, "replica lost") {
		t.Fatalf("wait error %q does not mention replica loss", waited.Error)
	}
}

// TestErrCodeClassification pins the machine-readable error codes /v1/
// bodies carry, including precedence: a retry-budget-exhausted error that
// wraps its replica-lost cause must classify as the exhaustion, not the
// cause.
func TestErrCodeClassification(t *testing.T) {
	for want, err := range map[string]error{
		"no_such_program":        pie.ErrNoSuchProgram,
		"unsatisfied_manifest":   pie.ErrUnsatisfiedManifest,
		"no_such_class":          pie.ErrNoSuchClass,
		"no_decode_capacity":     pie.ErrNoDecodeCapacity,
		"overloaded":             fmt.Errorf("wrapped: %w", pie.ErrOverloaded),
		"retry_budget_exhausted": fmt.Errorf("%w: %w", pie.ErrRetryBudgetExhausted, pie.ErrReplicaLost),
		"replica_lost":           pie.ErrReplicaLost,
		"transient_fault":        pie.ErrTransientFault,
		"aborted":                pie.ErrAborted,
		"deadline_exceeded":      pie.ErrDeadlineExceeded,
		"terminated":             pie.ErrTerminated,
		"internal":               errors.New("disk on fire"),
	} {
		if got := errCode(err); got != want {
			t.Errorf("errCode(%v) = %q, want %q", err, got, want)
		}
	}
}

// TestServiceClassLaunchAndStats drives the SLO surface end to end over
// HTTP: a classed launch admits and samples into the class tracker, an
// unknown class fails typed at the API boundary, and /stats reports the
// per-class attainment block plus per-replica variant/cost columns.
func TestServiceClassLaunchAndStats(t *testing.T) {
	classes, err := pie.ParseServiceClasses("interactive:ttft=250ms,itl=50ms,prio=10;batch:degradable")
	if err != nil {
		t.Fatal(err)
	}
	variants, err := pie.ParseReplicaVariants("l4:cost=1,count=1;l4e:cost=0.5,slow=1.2")
	if err != nil {
		t.Fatal(err)
	}
	_, ts := startTestServer(t, pie.Config{Seed: 7, Replicas: 2, Classes: classes, Variants: variants})

	launch := func(body string) (*http.Response, []byte) {
		t.Helper()
		resp, err := http.Post(ts.URL+"/launch", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		return resp, b
	}

	resp, body := launch(`{"program":"text_completion","args":["{\"prompt\":\"Hi\",\"max_tokens\":2}"],"class":"interactive"}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("classed launch: status %d: %s", resp.StatusCode, body)
	}
	var launched struct {
		ID int `json:"id"`
	}
	if err := json.Unmarshal(body, &launched); err != nil {
		t.Fatal(err)
	}
	if resp := getJSON(t, fmt.Sprintf("%s/wait?id=%d", ts.URL, launched.ID), nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("wait: status %d", resp.StatusCode)
	}

	// A class outside the registry fails typed before dispatch.
	resp, body = launch(`{"program":"text_completion","args":["{}"],"class":"platinum"}`)
	if resp.StatusCode != http.StatusBadRequest || !strings.Contains(string(body), "no_such_class") {
		t.Fatalf("unknown class: status %d body %s", resp.StatusCode, body)
	}

	var st struct {
		Engine struct {
			Classes []struct {
				Class       string  `json:"class"`
				TTFTSamples int     `json:"ttft_samples"`
				TTFTAttain  float64 `json:"ttft_attainment"`
			}
		} `json:"engine"`
		Replicas []struct {
			Device   string  `json:"device"`
			Variant  string  `json:"variant"`
			CostRate float64 `json:"cost_rate"`
		} `json:"replicas"`
	}
	getJSON(t, ts.URL+"/stats", &st)
	if len(st.Engine.Classes) != 2 || st.Engine.Classes[0].Class != "batch" || st.Engine.Classes[1].Class != "interactive" {
		t.Fatalf("class stats = %+v, want sorted [batch interactive]", st.Engine.Classes)
	}
	if got := st.Engine.Classes[1]; got.TTFTSamples == 0 || got.TTFTAttain != 1 {
		t.Fatalf("interactive tracker never sampled: %+v", got)
	}
	if len(st.Replicas) != 2 || st.Replicas[0].Variant != "l4" || st.Replicas[1].Variant != "l4e" ||
		st.Replicas[1].CostRate != 0.5 || st.Replicas[1].Device != "l4e-1" {
		t.Fatalf("replica variant stats = %+v", st.Replicas)
	}
}

// TestDisaggregatedStatsReportRoles serves a prefill/decode pool and
// checks the /stats wire form: every replica row names its role, and the
// handoff traffic a session generates shows up as handoffs_out on the
// prefill replica and handoffs_in on a decode one.
func TestDisaggregatedStatsReportRoles(t *testing.T) {
	roles, err := pie.ParseRoles("prefill:count=1;decode")
	if err != nil {
		t.Fatal(err)
	}
	_, ts := startTestServer(t, pie.Config{
		Seed: 7, Replicas: 3, Placement: pie.PlaceLeastLoaded, Roles: roles,
	})

	resp, err := http.Post(ts.URL+"/launch?program=text_completion", "application/json",
		strings.NewReader(`{"prompt":"Hi","max_tokens":12}`))
	if err != nil {
		t.Fatalf("launch: %v", err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	getJSON(t, ts.URL+"/wait?id=1", nil)

	var st struct {
		Engine struct {
			Handoffs     int
			HandoffPages int
		} `json:"engine"`
		Replicas []struct {
			ID          int    `json:"id"`
			Role        string `json:"role"`
			HandoffsIn  int    `json:"handoffs_in"`
			HandoffsOut int    `json:"handoffs_out"`
		} `json:"replicas"`
	}
	getJSON(t, ts.URL+"/stats", &st)
	if len(st.Replicas) != 3 {
		t.Fatalf("stats: %d replica entries, want 3", len(st.Replicas))
	}
	if st.Replicas[0].Role != "prefill" || st.Replicas[1].Role != "decode" || st.Replicas[2].Role != "decode" {
		t.Fatalf("replica roles = %+v, want [prefill decode decode]", st.Replicas)
	}
	if st.Engine.Handoffs != 1 || st.Engine.HandoffPages == 0 {
		t.Fatalf("engine handoff stats = %+v, want one migration with pages", st.Engine)
	}
	if st.Replicas[0].HandoffsOut != 1 {
		t.Fatalf("prefill handoffs_out = %d, want 1", st.Replicas[0].HandoffsOut)
	}
	if st.Replicas[1].HandoffsIn+st.Replicas[2].HandoffsIn != 1 {
		t.Fatalf("decode handoffs_in = %+v, want 1 total", st.Replicas)
	}
}

// TestBuildConfig drives the CLI wiring main uses: defaults, the fault-
// tolerance knobs, and rejection of malformed flag values.
func TestBuildConfig(t *testing.T) {
	fs := func() *flag.FlagSet { return flag.NewFlagSet("test", flag.ContinueOnError) }

	opts, err := buildConfig(fs(), nil)
	if err != nil || opts.Addr != ":8080" {
		t.Fatalf("defaults: addr=%q err=%v", opts.Addr, err)
	}
	cfg := opts.Cfg
	if cfg.Seed != 42 || cfg.Replicas != 1 || cfg.Health.Enabled || cfg.Shed.Enabled ||
		!cfg.Faults.Empty() || cfg.DefaultRetry.Enabled() {
		t.Fatalf("default config armed fault machinery: %+v", cfg)
	}

	opts, err = buildConfig(fs(), []string{
		"-addr", ":0", "-seed", "7", "-replicas", "8",
		"-autoscale-max", "12", "-autoscale-min", "2",
		"-health-interval", "5ms", "-hang-timeout", "80ms",
		"-shed-watermark", "0.85", "-shed-queue", "6.5",
		"-fault-plan", "crash:1@200ms,slow:2@100ms*3", "-fault-rate", "0.01",
		"-retry-attempts", "4", "-retry-budget", "250ms",
	})
	if err != nil {
		t.Fatal(err)
	}
	cfg = opts.Cfg
	if !cfg.Health.Enabled || cfg.Health.Interval != 5*time.Millisecond || cfg.Health.HangTimeout != 80*time.Millisecond {
		t.Fatalf("health wiring: %+v", cfg.Health)
	}
	if !cfg.Shed.Enabled || cfg.Shed.KVWatermark != 0.85 || cfg.Shed.QueueDepth != 6.5 {
		t.Fatalf("shed wiring: %+v", cfg.Shed)
	}
	if len(cfg.Faults.Events) != 2 || cfg.Faults.CallFailRate != 0.01 || cfg.Faults.Seed != 7 {
		t.Fatalf("fault wiring (seed should default to -seed): %+v", cfg.Faults)
	}
	if cfg.DefaultRetry.MaxAttempts != 4 || cfg.DefaultRetry.Budget != 250*time.Millisecond {
		t.Fatalf("retry wiring: %+v", cfg.DefaultRetry)
	}
	if !cfg.Autoscale.Enabled || cfg.Autoscale.Min != 2 || cfg.Autoscale.Max != 12 {
		t.Fatalf("autoscale wiring: %+v", cfg.Autoscale)
	}

	// An explicit fault seed overrides the engine seed.
	opts, err = buildConfig(fs(), []string{"-fault-rate", "0.5", "-fault-seed", "99"})
	cfg = opts.Cfg
	if err != nil || cfg.Faults.Seed != 99 {
		t.Fatalf("fault-seed override: %+v, %v", cfg.Faults, err)
	}

	// SLO surface: classes, heterogeneous variants, and the scaler.
	opts, err = buildConfig(fs(), []string{
		"-classes", "interactive:ttft=250ms,prio=10;batch:degradable",
		"-variants", "l4:cost=1,count=2;l4e:cost=0.6,slow=1.4",
		"-scaler-max", "6", "-scaler-min", "2", "-scale-to-zero",
	})
	if err != nil {
		t.Fatal(err)
	}
	cfg = opts.Cfg
	if len(cfg.Classes) != 2 || cfg.Classes[0].TTFTTarget != 250*time.Millisecond || !cfg.Classes[1].Degradable {
		t.Fatalf("class wiring: %+v", cfg.Classes)
	}
	if len(cfg.Variants) != 2 || cfg.Variants[1].CostRate != 0.6 || cfg.Variants[1].Slowdown != 1.4 {
		t.Fatalf("variant wiring: %+v", cfg.Variants)
	}
	if !cfg.Scaler.Enabled || cfg.Scaler.Min != 2 || cfg.Scaler.Max != 6 || !cfg.Scaler.ScaleToZero {
		t.Fatalf("scaler wiring: %+v", cfg.Scaler)
	}

	// Disaggregation surface: the roles spec piggybacks the -variants
	// syntax, and the transfer budget rides along with it.
	opts, err = buildConfig(fs(), []string{
		"-replicas", "4", "-roles", "prefill:count=1;decode", "-handoff-budget", "3",
	})
	if err != nil {
		t.Fatal(err)
	}
	cfg = opts.Cfg
	if len(cfg.Roles) != 2 || cfg.Roles[0].Role != pie.RolePrefill || cfg.Roles[0].Count != 1 ||
		cfg.Roles[1].Role != pie.RoleDecode || cfg.HandoffBudget != 3 {
		t.Fatalf("roles wiring: %+v budget=%d", cfg.Roles, cfg.HandoffBudget)
	}

	for _, bad := range [][]string{
		{"-placement", "bogus"},
		{"-kv-evict", "bogus"},
		{"-fault-plan", "explode:1@5ms"},
		{"-classes", "interactive:ttft=soon"},
		{"-variants", "l4:price=1"},
		{"-roles", "frontend"},
		{"-roles", "prefill:shards=2"},
	} {
		if _, err := buildConfig(fs(), bad); err == nil {
			t.Errorf("buildConfig(%v) accepted malformed flags", bad)
		}
	}
}
