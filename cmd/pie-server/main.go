// Command pie-server exposes a Pie engine over HTTP, mirroring the
// paper's ILM front end: clients upload nothing (programs are registered
// at startup) but can launch inferlets, exchange messages with them,
// stream their output, and inspect engine stats. The virtual clock runs
// in external mode: real HTTP requests inject work, simulated time
// advances instantly between them, and responses report virtual timings.
//
// The HTTP surface is versioned under /v1/ with structured JSON errors
// ({"error":{"code","message"}}); the original unversioned paths remain
// as deprecated aliases. Completed runs are evicted from the handle table
// by /v1/wait and /v1/close, so long-lived servers do not accumulate
// finished runs.
//
// Cluster mode fronts N backend replicas behind the placement router:
//
//	pie-server -addr :8080
//	pie-server -replicas 4 -placement kv-affinity
//	pie-server -replicas 1 -autoscale-max 8 -placement least
//	curl -X POST 'localhost:8080/v1/launch?program=text_completion' \
//	     -d '{"prompt":"Hello, ","max_tokens":8}'
//	curl 'localhost:8080/v1/recv?id=1'
//	curl -N 'localhost:8080/v1/stream?id=1'   # SSE message stream
//	curl 'localhost:8080/v1/wait?id=1'        # waits, reports, evicts
//	curl 'localhost:8080/v1/stats'            # engine + per-replica stats
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"time"

	"pie"
	"pie/apps"
	"pie/internal/cluster"
	"pie/internal/core"
	"pie/internal/fleet"
	"pie/internal/metrics"
)

type server struct {
	engine *pie.Engine
	mu     sync.Mutex
	nextID int
	runs   map[int]*pie.Handle
}

// newEngine assembles the serving engine exactly as main runs it: every
// app registered, tool services installed, external clock enabled, and the
// event loop running. Tests drive the same path.
func newEngine(cfg pie.Config) *pie.Engine {
	e := pie.New(cfg)
	e.MustRegister(apps.All()...)
	e.RegisterTool("search.api", 40*time.Millisecond, func(string) string { return "search results" })
	e.RegisterTool("code.exec", 80*time.Millisecond, func(string) string { return "exit 0" })
	e.RegisterTool("fn.api", 30*time.Millisecond, func(string) string { return "ok" })
	e.Clock().EnableExternal()
	go func() {
		if err := e.Run(); err != nil {
			log.Printf("engine: %v", err)
		}
	}()
	return e
}

func newServer(e *pie.Engine) *server {
	return &server{engine: e, runs: make(map[int]*pie.Handle)}
}

// mux routes the HTTP API: versioned paths first, then the legacy
// unversioned aliases (deprecated; they answer with a Deprecation header).
func (s *server) mux() *http.ServeMux {
	mux := http.NewServeMux()
	routes := map[string]http.HandlerFunc{
		"/launch":   s.launch,
		"/send":     s.send,
		"/recv":     s.recv,
		"/wait":     s.wait,
		"/close":    s.close,
		"/abort":    s.abort,
		"/stream":   s.stream,
		"/stats":    s.stats,
		"/programs": s.programs,
		"/fleet":    s.fleet,
	}
	for path, h := range routes {
		mux.HandleFunc("/v1"+path, h)
		mux.HandleFunc(path, deprecated("/v1"+path, h))
	}
	return mux
}

// deprecated wraps a handler for a legacy alias path.
func deprecated(successor string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Deprecation", "true")
		w.Header().Set("Link", fmt.Sprintf("<%s>; rel=\"successor-version\"", successor))
		h(w, r)
	}
}

// serverOptions is everything buildConfig decides: the engine config plus
// the server-level knobs (listen address, fleet-manifest path, validate
// mode).
type serverOptions struct {
	Addr       string
	Cfg        pie.Config
	ConfigPath string // fleet manifest the engine was built from ("" = flags only)
	Validate   bool   // parse/validate the manifest and exit
}

// topologyFlags shape the replica fleet. With -config, topology belongs
// to the manifest; setting any of these explicitly alongside it is a
// conflict, not an override.
var topologyFlags = []string{
	"replicas", "variants", "roles", "classes",
	"scaler-max", "scaler-min", "scale-to-zero",
	"autoscale-max", "autoscale-min",
}

// buildConfig defines the CLI surface on fs, parses args, and assembles
// the engine config. Split from main so tests can drive the same flag
// wiring (notably the fault-injection, health, shedding, and retry knobs)
// without exec'ing the binary.
//
// Precedence with -config: the manifest is the base, and only flags
// explicitly present on the command line override it — a flag left at
// its default does not (fs.Visit distinguishes the two). Topology flags
// conflict with -config outright (topologyFlags above).
func buildConfig(fs *flag.FlagSet, args []string) (serverOptions, error) {
	fail := func(err error) (serverOptions, error) { return serverOptions{}, err }
	addrFlag := fs.String("addr", ":8080", "listen address")
	configPath := fs.String("config", "", "fleet manifest path (declarative pools, pins, policies); explicitly set flags override manifest values, defaults do not")
	validate := fs.Bool("validate", false, "with -config: parse and validate the manifest, report, and exit")
	seed := fs.Uint64("seed", 42, "deterministic seed")
	replicas := fs.Int("replicas", 1, "backend replicas behind the cluster router")
	placement := fs.String("placement", "round-robin", "placement policy: round-robin | least-outstanding-tokens | kv-affinity | program-affinity")
	autoMax := fs.Int("autoscale-max", 0, "enable the autoscaler with this max replica bound (0 disables)")
	autoMin := fs.Int("autoscale-min", 1, "autoscaler min replica bound")
	classes := fs.String("classes", "", "service-class registry, e.g. 'interactive:ttft=250ms,itl=50ms,prio=10;batch:degradable' (empty: no classes)")
	variants := fs.String("variants", "", "heterogeneous replica pool, e.g. 'l4:cost=1,count=4;l4e:cost=0.6,slow=1.4' (empty: homogeneous)")
	roles := fs.String("roles", "", "prefill/decode disaggregated pool, e.g. 'prefill:count=2;decode' (empty: unified)")
	handoffBudget := fs.Int("handoff-budget", 0, "max concurrent prefill->decode KV transfers (0: default)")
	scalerMax := fs.Int("scaler-max", 0, "enable the SLO scaler with this max replica bound (0 disables; supersedes -autoscale-max)")
	scalerMin := fs.Int("scaler-min", 1, "SLO scaler min replica bound")
	scaleToZero := fs.Bool("scale-to-zero", false, "let the SLO scaler drain an idle fleet to zero replicas")
	hostKV := fs.Float64("host-kv-ratio", 0, "host-memory KV tier size as a multiple of device page capacity (0 disables offload)")
	kvEvict := fs.String("kv-evict", "lru", "KV offload eviction policy: lru | priority")
	artCache := fs.Int64("artifact-cache", 0, "per-replica warm-artifact cache capacity in bytes (0: device default, <0: unbounded)")
	healthEvery := fs.Duration("health-interval", 0, "replica health-check interval (0 disables the health monitor)")
	hangTimeout := fs.Duration("hang-timeout", 0, "declare a silent replica dead after this much virtual time without progress (0: default)")
	shedWatermark := fs.Float64("shed-watermark", 0, "shed best-effort launches above this cluster KV utilization (0 disables shedding)")
	shedQueue := fs.Float64("shed-queue", 0, "shed best-effort launches above this mean per-replica queue depth (0: default)")
	faultPlan := fs.String("fault-plan", "", "injected fault schedule, e.g. 'crash:1@200ms,hang:2@300ms,slow:3@100ms*4'")
	faultRate := fs.Float64("fault-rate", 0, "per-launch transient fault probability (0 disables)")
	faultSeed := fs.Uint64("fault-seed", 0, "seed for the transient-fault stream (default: -seed)")
	retryAttempts := fs.Int("retry-attempts", 0, "default launch retry attempts, including the first (<=1 disables retries)")
	retryBudget := fs.Duration("retry-budget", 0, "default cumulative backoff budget per launch (0: unlimited)")
	if err := fs.Parse(args); err != nil {
		return fail(err)
	}

	// Which flags the command line actually set: the precedence boundary.
	// Explicitly set flags override the manifest; defaults never do.
	set := make(map[string]bool)
	fs.Visit(func(f *flag.Flag) { set[f.Name] = true })

	var cfg pie.Config
	fromManifest := *configPath != ""
	if fromManifest {
		for _, name := range topologyFlags {
			if set[name] {
				return fail(fmt.Errorf("-%s conflicts with -config: declare fleet topology in the manifest", name))
			}
		}
		m, err := fleet.ParseFile(*configPath)
		if err != nil {
			return fail(err)
		}
		cfg, err = pie.ConfigFromManifest(m)
		if err != nil {
			return fail(err)
		}
	}
	// useFlag: apply the flag's value when it may speak — always without a
	// manifest, only when explicitly set with one.
	useFlag := func(name string) bool { return !fromManifest || set[name] }

	if useFlag("seed") {
		cfg.Seed = *seed
	}
	if useFlag("placement") {
		pol, err := cluster.ParsePlacement(*placement)
		if err != nil {
			return fail(err)
		}
		cfg.Placement = pol
	}
	if useFlag("host-kv-ratio") {
		cfg.HostKVRatio = *hostKV
	}
	if useFlag("kv-evict") {
		evict, err := core.ParseEviction(*kvEvict)
		if err != nil {
			return fail(err)
		}
		cfg.KVEviction = evict
	}
	cfg.ArtifactCacheBytes = *artCache
	if !fromManifest {
		cfg.Replicas = *replicas
		if *autoMax > 0 {
			cfg.Autoscale = pie.AutoscaleConfig{Enabled: true, Min: *autoMin, Max: *autoMax}
		}
		if *classes != "" {
			var err error
			cfg.Classes, err = pie.ParseServiceClasses(*classes)
			if err != nil {
				return fail(err)
			}
		}
		if *variants != "" {
			var err error
			cfg.Variants, err = pie.ParseReplicaVariants(*variants)
			if err != nil {
				return fail(err)
			}
		}
		if *roles != "" {
			var err error
			cfg.Roles, err = pie.ParseRoles(*roles)
			if err != nil {
				return fail(err)
			}
			cfg.HandoffBudget = *handoffBudget
		}
		if *scalerMax > 0 {
			cfg.Scaler = pie.ScalerConfig{Enabled: true, Min: *scalerMin, Max: *scalerMax, ScaleToZero: *scaleToZero}
		}
	}
	if *healthEvery > 0 {
		cfg.Health = pie.HealthConfig{Enabled: true, Interval: *healthEvery, HangTimeout: *hangTimeout}
	}
	if *shedWatermark > 0 {
		cfg.Shed = pie.ShedConfig{Enabled: true, KVWatermark: *shedWatermark, QueueDepth: *shedQueue}
	}
	if *faultPlan != "" || *faultRate > 0 {
		plan, perr := pie.ParseFaultPlan(*faultPlan)
		if perr != nil {
			return fail(perr)
		}
		plan.CallFailRate = *faultRate
		plan.Seed = *faultSeed
		if plan.Seed == 0 {
			plan.Seed = cfg.Seed
		}
		cfg.Faults = plan
	}
	if *retryAttempts > 1 {
		cfg.DefaultRetry = pie.RetryPolicy{MaxAttempts: *retryAttempts, Budget: *retryBudget}
	}
	return serverOptions{Addr: *addrFlag, Cfg: cfg, ConfigPath: *configPath, Validate: *validate}, nil
}

func main() {
	opts, err := buildConfig(flag.CommandLine, os.Args[1:])
	if err != nil {
		log.Fatal(err)
	}
	if opts.Validate {
		// buildConfig already parsed and validated the manifest (and
		// would have log.Fatal'd above on any typed error).
		if opts.ConfigPath == "" {
			log.Fatal("-validate requires -config")
		}
		fmt.Printf("%s: ok\n", opts.ConfigPath)
		return
	}
	s := newServer(newEngine(opts.Cfg))
	if opts.ConfigPath != "" {
		// SIGHUP re-reads the manifest and hot-applies it, the classic
		// daemon reload contract. POST /v1/fleet is the remote equivalent.
		hup := make(chan os.Signal, 1)
		signal.Notify(hup, syscall.SIGHUP)
		go func() {
			for range hup {
				if err := s.reloadFleet(opts.ConfigPath); err != nil {
					log.Printf("fleet reload %s: %v", opts.ConfigPath, err)
				} else {
					log.Printf("fleet reload %s: applied", opts.ConfigPath)
				}
			}
		}()
	}
	log.Printf("pie-server listening on %s (%v)", opts.Addr, s.engine)
	log.Fatal(http.ListenAndServe(opts.Addr, s.mux()))
}

// reloadFleet re-reads the boot manifest and applies it to the running
// engine (the SIGHUP path; tests drive it directly).
func (s *server) reloadFleet(path string) error {
	m, err := fleet.ParseFile(path)
	if err != nil {
		return err
	}
	var applyErr error
	s.inject("http:fleet-reload", func() { applyErr = s.engine.ApplyFleet(m) })
	return applyErr
}

// inject runs fn as a sim process and blocks the HTTP handler until done.
func (s *server) inject(name string, fn func()) {
	done := make(chan struct{})
	s.engine.Clock().Inject(name, func() {
		defer close(done)
		fn()
	})
	<-done
}

// errCode maps an engine error to the machine-readable code used in /v1/
// error bodies, so clients can branch on failure class (retry a
// replica_lost, back off an overloaded) without parsing message text.
func errCode(err error) string {
	switch {
	case errors.Is(err, pie.ErrNoSuchProgram):
		return "no_such_program"
	case errors.Is(err, pie.ErrUnsatisfiedManifest):
		return "unsatisfied_manifest"
	case errors.Is(err, pie.ErrNoSuchClass):
		return "no_such_class"
	case errors.Is(err, pie.ErrNoDecodeCapacity):
		return "no_decode_capacity"
	case errors.Is(err, pie.ErrOverloaded):
		return "overloaded"
	case errors.Is(err, pie.ErrRetryBudgetExhausted):
		return "retry_budget_exhausted"
	case errors.Is(err, pie.ErrReplicaLost):
		return "replica_lost"
	case errors.Is(err, pie.ErrTransientFault):
		return "transient_fault"
	case errors.Is(err, pie.ErrAborted):
		return "aborted"
	case errors.Is(err, pie.ErrDeadlineExceeded):
		return "deadline_exceeded"
	case errors.Is(err, pie.ErrTerminated):
		return "terminated"
	default:
		return "internal"
	}
}

// writeErr emits the structured error body shared by every endpoint.
func writeErr(w http.ResponseWriter, status int, code, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(map[string]interface{}{
		"error": map[string]string{"code": code, "message": msg},
	})
}

// launchBody is the /v1/launch request: a wire-form pie.LaunchSpec. The
// legacy form (?program= query parameter, body as the single launch
// argument) keeps working — presence of the query parameter selects it.
type launchBody struct {
	Program    string   `json:"program"` // "name" or "name@version"
	Args       []string `json:"args"`
	Class      string   `json:"class"` // service class (empty: manifest default)
	Priority   int      `json:"priority"`
	DeadlineMS int64    `json:"deadline_ms"`
	ClientTag  string   `json:"client_tag"`
}

func (s *server) launch(w http.ResponseWriter, r *http.Request) {
	program := r.URL.Query().Get("program")
	body, _ := io.ReadAll(r.Body)
	var spec pie.LaunchSpec
	if program != "" {
		// Legacy form: the body is the program's single JSON argument.
		spec = pie.Spec(program)
		if len(body) > 0 {
			spec.Args = []string{string(body)}
		}
	} else {
		var lb launchBody
		if err := json.Unmarshal(body, &lb); err != nil {
			writeErr(w, http.StatusBadRequest, "invalid_argument",
				"body must be a JSON launch spec (or pass ?program=)")
			return
		}
		if lb.Program == "" {
			writeErr(w, http.StatusBadRequest, "invalid_argument", "launch spec needs a program")
			return
		}
		if lb.DeadlineMS < 0 {
			writeErr(w, http.StatusBadRequest, "invalid_argument", "deadline_ms must be >= 0")
			return
		}
		spec = pie.LaunchSpec{
			Program:   lb.Program,
			Args:      lb.Args,
			Class:     lb.Class,
			Priority:  lb.Priority,
			Deadline:  time.Duration(lb.DeadlineMS) * time.Millisecond,
			ClientTag: lb.ClientTag,
		}
	}
	var h *pie.Handle
	var err error
	s.inject("http:launch", func() { h, err = s.engine.Launch(spec) })
	if err != nil {
		status, code := http.StatusBadRequest, "launch_failed"
		switch {
		case errors.Is(err, pie.ErrNoSuchProgram):
			status, code = http.StatusNotFound, "no_such_program"
		case errors.Is(err, pie.ErrUnsatisfiedManifest):
			status, code = http.StatusConflict, "unsatisfied_manifest"
		case errors.Is(err, pie.ErrNoSuchClass):
			status, code = http.StatusBadRequest, "no_such_class"
		case errors.Is(err, pie.ErrOverloaded):
			// Saturation guard shed a best-effort launch: classic 429,
			// with Retry-After so well-behaved clients back off.
			w.Header().Set("Retry-After", "1")
			status, code = http.StatusTooManyRequests, "overloaded"
		case errors.Is(err, pie.ErrRetryBudgetExhausted),
			errors.Is(err, pie.ErrReplicaLost),
			errors.Is(err, pie.ErrTransientFault):
			status, code = http.StatusServiceUnavailable, errCode(err)
		}
		writeErr(w, status, code, err.Error())
		return
	}
	s.mu.Lock()
	s.nextID++
	id := s.nextID
	s.runs[id] = h
	s.mu.Unlock()
	name, version := h.Program()
	writeJSON(w, map[string]interface{}{
		"id": id, "program": name, "version": version, "client_tag": h.ClientTag(),
	})
}

// abort cancels a running inferlet: its resources return to the pools and
// a pending or future wait reports the abort error. The handle stays in
// the table so the client can still collect logs via /v1/wait.
func (s *server) abort(w http.ResponseWriter, r *http.Request) {
	h, id, ok := s.handle(w, r)
	if !ok {
		return
	}
	var aborted bool
	s.inject("http:abort", func() { aborted = h.Abort() })
	if !aborted {
		writeErr(w, http.StatusConflict, "already_finished",
			fmt.Sprintf("run %d already finished; nothing to abort", id))
		return
	}
	writeJSON(w, map[string]interface{}{"status": "aborted", "id": id})
}

// handle resolves the id parameter to a live run, or reports the
// structured error it wrote.
func (s *server) handle(w http.ResponseWriter, r *http.Request) (*pie.Handle, int, bool) {
	id, err := strconv.Atoi(r.URL.Query().Get("id"))
	if err != nil {
		writeErr(w, http.StatusBadRequest, "invalid_argument", "id must be an integer")
		return nil, 0, false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	h, ok := s.runs[id]
	if !ok {
		writeErr(w, http.StatusNotFound, "unknown_id", fmt.Sprintf("no run with id %d", id))
		return nil, id, false
	}
	return h, id, true
}

// evict removes a finished run from the handle table.
func (s *server) evict(id int) {
	s.mu.Lock()
	delete(s.runs, id)
	s.mu.Unlock()
}

// liveRuns reports the handle-table size (eviction tests).
func (s *server) liveRuns() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.runs)
}

func (s *server) send(w http.ResponseWriter, r *http.Request) {
	h, _, ok := s.handle(w, r)
	if !ok {
		return
	}
	body, _ := io.ReadAll(r.Body)
	s.inject("http:send", func() { h.Send(string(body)) })
	writeJSON(w, map[string]string{"status": "sent"})
}

func (s *server) recv(w http.ResponseWriter, r *http.Request) {
	h, _, ok := s.handle(w, r)
	if !ok {
		return
	}
	var msg string
	var recvErr error
	s.inject("http:recv", func() { msg, recvErr = h.Recv().Get() })
	if recvErr != nil {
		writeErr(w, http.StatusGone, "gone", recvErr.Error())
		return
	}
	writeJSON(w, map[string]string{"message": msg})
}

// wait blocks until the run finishes, reports its result, and evicts the
// handle: a waited-on run is finished business and must not leak in the
// table. Clients drain messages (recv/stream) before waiting.
func (s *server) wait(w http.ResponseWriter, r *http.Request) {
	h, id, ok := s.handle(w, r)
	if !ok {
		return
	}
	var runErr error
	s.inject("http:wait", func() { runErr = h.Wait() })
	cc, ic, tok := h.Stats()
	resp := map[string]interface{}{
		"logs": h.Logs(), "controlCalls": cc, "inferCalls": ic, "outputTokens": tok,
		"virtualTime": s.engine.Now().String(),
	}
	if runErr != nil {
		resp["error"] = runErr.Error()
		resp["error_code"] = errCode(runErr)
	}
	s.evict(id)
	writeJSON(w, resp)
}

// close evicts a run without waiting: the client is done with it.
func (s *server) close(w http.ResponseWriter, r *http.Request) {
	_, id, ok := s.handle(w, r)
	if !ok {
		return
	}
	s.evict(id)
	writeJSON(w, map[string]interface{}{"status": "closed", "id": id})
}

// stream serves the run's messages as Server-Sent Events: one `data:`
// event per inferlet message, then `event: end` when the inferlet's
// mailbox closes (all messages delivered, inferlet finished).
func (s *server) stream(w http.ResponseWriter, r *http.Request) {
	h, _, ok := s.handle(w, r)
	if !ok {
		return
	}
	fl, canFlush := w.(http.Flusher)
	if !canFlush {
		writeErr(w, http.StatusInternalServerError, "no_streaming", "response writer cannot stream")
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	fl.Flush()
	// Poll with TryRecv instead of parking a sim process in a blocking
	// Recv: an abandoned connection must neither leak a goroutine stuck
	// in inject nor consume a message a live consumer was waiting for.
	for {
		var msg string
		var got, finished bool
		s.inject("http:stream", func() {
			msg, got = h.TryRecv()
			if !got {
				// Messages enqueue before the run resolves done, so
				// done + drained means nothing more will ever arrive.
				finished = h.Done()
			}
		})
		switch {
		case got:
			for _, line := range strings.Split(msg, "\n") {
				fmt.Fprintf(w, "data: %s\n", line)
			}
			fmt.Fprint(w, "\n")
			fl.Flush()
		case finished:
			fmt.Fprint(w, "event: end\ndata: closed\n\n")
			fl.Flush()
			return
		default:
			select {
			case <-r.Context().Done():
				return
			case <-time.After(20 * time.Millisecond):
			}
		}
	}
}

// stats reports engine totals plus per-replica counters. The snapshot
// runs as an injected sim process like every other handler: the counters
// live on the engine's event-loop goroutine.
func (s *server) stats(w http.ResponseWriter, r *http.Request) {
	var engine pie.Stats
	var replicas []metrics.ReplicaStats
	s.inject("http:stats", func() {
		engine = s.engine.Stats()
		replicas = s.engine.ReplicaStats()
	})
	writeJSON(w, map[string]interface{}{
		"engine":   engine,
		"replicas": replicas,
	})
}

// programInfoJSON is the /v1/programs wire form of one registered artifact.
type programInfoJSON struct {
	Name       string   `json:"name"`
	Version    string   `json:"version"`
	Latest     bool     `json:"latest"`
	BinarySize int      `json:"binary_size"`
	Models     []string `json:"models,omitempty"`
	Traits     []string `json:"traits,omitempty"`
	MaxQueues  int      `json:"max_queues,omitempty"`
	MaxKvPages int      `json:"max_kv_pages,omitempty"`
	DeadlineMS int64    `json:"deadline_ms,omitempty"`
}

func programJSON(p pie.ProgramInfo) programInfoJSON {
	out := programInfoJSON{
		Name:       p.Name,
		Version:    p.Version,
		Latest:     p.Latest,
		BinarySize: p.BinarySize,
		MaxQueues:  p.Manifest.Limits.MaxQueues,
		MaxKvPages: p.Manifest.Limits.MaxKvPages,
		DeadlineMS: int64(p.Manifest.Limits.Deadline / time.Millisecond),
	}
	for _, m := range p.Manifest.Models {
		out.Models = append(out.Models, string(m))
	}
	for _, t := range p.Manifest.Traits {
		out.Traits = append(out.Traits, string(t))
	}
	return out
}

// programs lists the versioned registry with manifest details; ?name=
// narrows to one program's versions (404 when it is not registered).
func (s *server) programs(w http.ResponseWriter, r *http.Request) {
	var infos []pie.ProgramInfo
	s.inject("http:programs", func() { infos = s.engine.Programs() })
	name := r.URL.Query().Get("name")
	out := make([]programInfoJSON, 0, len(infos))
	for _, p := range infos {
		if name == "" || p.Name == name {
			out = append(out, programJSON(p))
		}
	}
	if name != "" && len(out) == 0 {
		writeErr(w, http.StatusNotFound, "no_such_program",
			fmt.Sprintf("no program named %q", name))
		return
	}
	writeJSON(w, out)
}

// fleetErrStatus maps a manifest/apply error to an HTTP status and the
// machine-readable code clients branch on.
func fleetErrStatus(err error) (int, string) {
	switch {
	case errors.Is(err, pie.ErrNotFleetManaged):
		return http.StatusNotFound, "not_fleet_managed"
	case errors.Is(err, fleet.ErrImmutable):
		return http.StatusConflict, "immutable_field"
	case errors.Is(err, fleet.ErrUnknownReference):
		return http.StatusBadRequest, "unknown_reference"
	case errors.Is(err, fleet.ErrBadVersion):
		return http.StatusBadRequest, "bad_version"
	case errors.Is(err, fleet.ErrAmbiguousPool):
		return http.StatusBadRequest, "ambiguous_pool"
	default:
		return http.StatusBadRequest, "invalid_manifest"
	}
}

// fleet is the declarative-management surface: GET reports the
// controller's desired-vs-actual reconciliation status; POST hot-applies
// a new manifest (the remote equivalent of SIGHUP). Topology changes are
// refused 409 typed immutable_field; a server started without -config
// answers 404 not_fleet_managed.
func (s *server) fleet(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodPost:
		body, err := io.ReadAll(r.Body)
		if err != nil {
			writeErr(w, http.StatusBadRequest, "invalid_argument", "unreadable body")
			return
		}
		m, err := fleet.Parse(body)
		if err != nil {
			status, code := fleetErrStatus(err)
			writeErr(w, status, code, err.Error())
			return
		}
		var applyErr error
		s.inject("http:fleet-apply", func() { applyErr = s.engine.ApplyFleet(m) })
		if applyErr != nil {
			status, code := fleetErrStatus(applyErr)
			writeErr(w, status, code, applyErr.Error())
			return
		}
		var st fleet.Status
		s.inject("http:fleet-status", func() { st, _ = s.engine.FleetStatus() })
		writeJSON(w, map[string]interface{}{"status": "applied", "fleet": st})
	case http.MethodGet:
		var st fleet.Status
		var desired *fleet.Manifest
		var ok bool
		s.inject("http:fleet-status", func() {
			if st, ok = s.engine.FleetStatus(); ok {
				desired = s.engine.FleetController().Desired()
			}
		})
		if !ok {
			writeErr(w, http.StatusNotFound, "not_fleet_managed",
				"server was not started from a fleet manifest (-config)")
			return
		}
		writeJSON(w, map[string]interface{}{"fleet": st, "desired": desired})
	default:
		writeErr(w, http.StatusMethodNotAllowed, "method_not_allowed", "use GET or POST")
	}
}

func writeJSON(w http.ResponseWriter, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(v)
}
