// Command pie-server exposes a Pie engine over HTTP, mirroring the
// paper's ILM front end: clients upload nothing (programs are registered
// at startup) but can launch inferlets, exchange messages with them, and
// inspect engine stats. The virtual clock runs in external mode: real
// HTTP requests inject work, simulated time advances instantly between
// them, and responses report virtual timings.
//
// Cluster mode fronts N backend replicas behind the placement router:
//
//	pie-server -addr :8080
//	pie-server -replicas 4 -placement kv-affinity
//	pie-server -replicas 1 -autoscale-max 8 -placement least
//	curl -X POST 'localhost:8080/launch?program=text_completion' \
//	     -d '{"prompt":"Hello, ","max_tokens":8}'
//	curl 'localhost:8080/recv?id=1'
//	curl 'localhost:8080/wait?id=1'
//	curl 'localhost:8080/stats'       # engine totals + per-replica stats
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"strconv"
	"sync"
	"time"

	"pie"
	"pie/apps"
	"pie/internal/cluster"
	"pie/internal/metrics"
)

type server struct {
	engine *pie.Engine
	mu     sync.Mutex
	nextID int
	runs   map[int]*pie.Handle
}

// newEngine assembles the serving engine exactly as main runs it: every
// app registered, tool services installed, external clock enabled, and the
// event loop running. Tests drive the same path.
func newEngine(cfg pie.Config) *pie.Engine {
	e := pie.New(cfg)
	e.MustRegister(apps.All()...)
	e.RegisterTool("search.api", 40*time.Millisecond, func(string) string { return "search results" })
	e.RegisterTool("code.exec", 80*time.Millisecond, func(string) string { return "exit 0" })
	e.RegisterTool("fn.api", 30*time.Millisecond, func(string) string { return "ok" })
	e.Clock().EnableExternal()
	go func() {
		if err := e.Run(); err != nil {
			log.Printf("engine: %v", err)
		}
	}()
	return e
}

func newServer(e *pie.Engine) *server {
	return &server{engine: e, runs: make(map[int]*pie.Handle)}
}

// mux routes the HTTP API.
func (s *server) mux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/launch", s.launch)
	mux.HandleFunc("/send", s.send)
	mux.HandleFunc("/recv", s.recv)
	mux.HandleFunc("/wait", s.wait)
	mux.HandleFunc("/stats", s.stats)
	mux.HandleFunc("/programs", s.programs)
	return mux
}

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	seed := flag.Uint64("seed", 42, "deterministic seed")
	replicas := flag.Int("replicas", 1, "backend replicas behind the cluster router")
	placement := flag.String("placement", "round-robin", "placement policy: round-robin | least-outstanding-tokens | kv-affinity")
	autoMax := flag.Int("autoscale-max", 0, "enable the autoscaler with this max replica bound (0 disables)")
	autoMin := flag.Int("autoscale-min", 1, "autoscaler min replica bound")
	flag.Parse()

	pol, err := cluster.ParsePlacement(*placement)
	if err != nil {
		log.Fatal(err)
	}
	cfg := pie.Config{Seed: *seed, Replicas: *replicas, Placement: pol}
	if *autoMax > 0 {
		cfg.Autoscale = pie.AutoscaleConfig{Enabled: true, Min: *autoMin, Max: *autoMax}
	}
	s := newServer(newEngine(cfg))
	log.Printf("pie-server listening on %s (%v)", *addr, s.engine)
	log.Fatal(http.ListenAndServe(*addr, s.mux()))
}

// inject runs fn as a sim process and blocks the HTTP handler until done.
func (s *server) inject(name string, fn func()) {
	done := make(chan struct{})
	s.engine.Clock().Inject(name, func() {
		defer close(done)
		fn()
	})
	<-done
}

func (s *server) launch(w http.ResponseWriter, r *http.Request) {
	program := r.URL.Query().Get("program")
	body, _ := io.ReadAll(r.Body)
	var h *pie.Handle
	var err error
	s.inject("http:launch", func() {
		if len(body) > 0 {
			h, err = s.engine.Launch(program, string(body))
		} else {
			h, err = s.engine.Launch(program)
		}
	})
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	s.mu.Lock()
	s.nextID++
	id := s.nextID
	s.runs[id] = h
	s.mu.Unlock()
	writeJSON(w, map[string]interface{}{"id": id, "program": program})
}

func (s *server) handle(r *http.Request) (*pie.Handle, error) {
	id, err := strconv.Atoi(r.URL.Query().Get("id"))
	if err != nil {
		return nil, fmt.Errorf("bad id")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	h, ok := s.runs[id]
	if !ok {
		return nil, fmt.Errorf("unknown id %d", id)
	}
	return h, nil
}

func (s *server) send(w http.ResponseWriter, r *http.Request) {
	h, err := s.handle(r)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	body, _ := io.ReadAll(r.Body)
	s.inject("http:send", func() { h.Send(string(body)) })
	writeJSON(w, map[string]string{"status": "sent"})
}

func (s *server) recv(w http.ResponseWriter, r *http.Request) {
	h, err := s.handle(r)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	var msg string
	var recvErr error
	s.inject("http:recv", func() { msg, recvErr = h.Recv().Get() })
	if recvErr != nil {
		http.Error(w, recvErr.Error(), http.StatusGone)
		return
	}
	writeJSON(w, map[string]string{"message": msg})
}

func (s *server) wait(w http.ResponseWriter, r *http.Request) {
	h, err := s.handle(r)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	var runErr error
	s.inject("http:wait", func() { runErr = h.Wait() })
	cc, ic, tok := h.Stats()
	resp := map[string]interface{}{
		"logs": h.Logs(), "controlCalls": cc, "inferCalls": ic, "outputTokens": tok,
		"virtualTime": s.engine.Now().String(),
	}
	if runErr != nil {
		resp["error"] = runErr.Error()
	}
	writeJSON(w, resp)
}

// stats reports engine totals plus per-replica counters. The snapshot
// runs as an injected sim process like every other handler: the counters
// live on the engine's event-loop goroutine.
func (s *server) stats(w http.ResponseWriter, r *http.Request) {
	var engine pie.Stats
	var replicas []metrics.ReplicaStats
	s.inject("http:stats", func() {
		engine = s.engine.Stats()
		replicas = s.engine.ReplicaStats()
	})
	writeJSON(w, map[string]interface{}{
		"engine":   engine,
		"replicas": replicas,
	})
}

func (s *server) programs(w http.ResponseWriter, r *http.Request) {
	var names []string
	for _, p := range apps.All() {
		names = append(names, p.Name)
	}
	writeJSON(w, names)
}

func writeJSON(w http.ResponseWriter, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(v)
}
