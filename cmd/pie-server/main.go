// Command pie-server exposes a Pie engine over HTTP, mirroring the
// paper's ILM front end: clients upload nothing (programs are registered
// at startup) but can launch inferlets, exchange messages with them, and
// inspect engine stats. The virtual clock runs in external mode: real
// HTTP requests inject work, simulated time advances instantly between
// them, and responses report virtual timings.
//
//	pie-server -addr :8080
//	curl -X POST 'localhost:8080/launch?program=text_completion' \
//	     -d '{"prompt":"Hello, ","max_tokens":8}'
//	curl 'localhost:8080/recv?id=1'
//	curl 'localhost:8080/wait?id=1'
//	curl 'localhost:8080/stats'
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"strconv"
	"sync"
	"time"

	"pie"
	"pie/apps"
)

type server struct {
	engine *pie.Engine
	mu     sync.Mutex
	nextID int
	runs   map[int]*pie.Handle
}

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	seed := flag.Uint64("seed", 42, "deterministic seed")
	flag.Parse()

	e := pie.New(pie.Config{Seed: *seed})
	e.MustRegister(apps.All()...)
	e.RegisterTool("search.api", 40*time.Millisecond, func(string) string { return "search results" })
	e.RegisterTool("code.exec", 80*time.Millisecond, func(string) string { return "exit 0" })
	e.RegisterTool("fn.api", 30*time.Millisecond, func(string) string { return "ok" })
	e.Clock().EnableExternal()
	go func() {
		if err := e.Run(); err != nil {
			log.Printf("engine: %v", err)
		}
	}()

	s := &server{engine: e, runs: make(map[int]*pie.Handle)}
	mux := http.NewServeMux()
	mux.HandleFunc("/launch", s.launch)
	mux.HandleFunc("/send", s.send)
	mux.HandleFunc("/recv", s.recv)
	mux.HandleFunc("/wait", s.wait)
	mux.HandleFunc("/stats", s.stats)
	mux.HandleFunc("/programs", s.programs)
	log.Printf("pie-server listening on %s", *addr)
	log.Fatal(http.ListenAndServe(*addr, mux))
}

// inject runs fn as a sim process and blocks the HTTP handler until done.
func (s *server) inject(name string, fn func()) {
	done := make(chan struct{})
	s.engine.Clock().Inject(name, func() {
		defer close(done)
		fn()
	})
	<-done
}

func (s *server) launch(w http.ResponseWriter, r *http.Request) {
	program := r.URL.Query().Get("program")
	body, _ := io.ReadAll(r.Body)
	var h *pie.Handle
	var err error
	s.inject("http:launch", func() {
		if len(body) > 0 {
			h, err = s.engine.Launch(program, string(body))
		} else {
			h, err = s.engine.Launch(program)
		}
	})
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	s.mu.Lock()
	s.nextID++
	id := s.nextID
	s.runs[id] = h
	s.mu.Unlock()
	writeJSON(w, map[string]interface{}{"id": id, "program": program})
}

func (s *server) handle(r *http.Request) (*pie.Handle, error) {
	id, err := strconv.Atoi(r.URL.Query().Get("id"))
	if err != nil {
		return nil, fmt.Errorf("bad id")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	h, ok := s.runs[id]
	if !ok {
		return nil, fmt.Errorf("unknown id %d", id)
	}
	return h, nil
}

func (s *server) send(w http.ResponseWriter, r *http.Request) {
	h, err := s.handle(r)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	body, _ := io.ReadAll(r.Body)
	s.inject("http:send", func() { h.Send(string(body)) })
	writeJSON(w, map[string]string{"status": "sent"})
}

func (s *server) recv(w http.ResponseWriter, r *http.Request) {
	h, err := s.handle(r)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	var msg string
	var recvErr error
	s.inject("http:recv", func() { msg, recvErr = h.Recv().Get() })
	if recvErr != nil {
		http.Error(w, recvErr.Error(), http.StatusGone)
		return
	}
	writeJSON(w, map[string]string{"message": msg})
}

func (s *server) wait(w http.ResponseWriter, r *http.Request) {
	h, err := s.handle(r)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	var runErr error
	s.inject("http:wait", func() { runErr = h.Wait() })
	cc, ic, tok := h.Stats()
	resp := map[string]interface{}{
		"logs": h.Logs(), "controlCalls": cc, "inferCalls": ic, "outputTokens": tok,
		"virtualTime": s.engine.Now().String(),
	}
	if runErr != nil {
		resp["error"] = runErr.Error()
	}
	writeJSON(w, resp)
}

func (s *server) stats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, s.engine.Stats())
}

func (s *server) programs(w http.ResponseWriter, r *http.Request) {
	var names []string
	for _, p := range apps.All() {
		names = append(names, p.Name)
	}
	writeJSON(w, names)
}

func writeJSON(w http.ResponseWriter, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(v)
}
