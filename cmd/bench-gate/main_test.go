package main

import (
	"os"
	"path/filepath"
	"testing"

	"pie/internal/benchfmt"
)

func writeTolConfig(t *testing.T, doc string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "tol.json")
	if err := os.WriteFile(path, []byte(doc), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestTolConfigResolution pins the layering: metric override > experiment
// override > document default > -tol flag, and a nil config falls straight
// through to the flag.
func TestTolConfigResolution(t *testing.T) {
	c, err := loadTolConfig(writeTolConfig(t, `{
		"default": 0.10,
		"experiments": {
			"fleet":  {"metrics": {"naive-vs-steady-x": 0.35}},
			"faults": {"tol": 0.25, "metrics": {"p95-ms": 0.30}}
		}
	}`))
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		id, metric string
		want       float64
	}{
		{"fleet", "naive-vs-steady-x", 0.35},   // metric override
		{"fleet", "rolling-vs-steady-x", 0.10}, // falls to document default
		{"faults", "p95-ms", 0.30},             // metric override beats exp tol
		{"faults", "other", 0.25},              // experiment tol
		{"cluster", "anything", 0.10},          // document default
	}
	for _, tc := range cases {
		if got := c.forMetric(tc.id, tc.metric, 0.20); got != tc.want {
			t.Errorf("forMetric(%s, %s) = %v, want %v", tc.id, tc.metric, got, tc.want)
		}
	}
	if got := c.forExperiment("faults", 0.20); got != 0.25 {
		t.Errorf("forExperiment(faults) = %v", got)
	}
	if got := c.forExperiment("fleet", 0.20); got != 0.10 {
		t.Errorf("forExperiment(fleet) = %v, want document default", got)
	}

	// No document default: unlisted experiments use the flag.
	c2, err := loadTolConfig(writeTolConfig(t, `{"experiments": {"fleet": {"tol": 0.30}}}`))
	if err != nil {
		t.Fatal(err)
	}
	if got := c2.forMetric("cluster", "x", 0.20); got != 0.20 {
		t.Errorf("flag fallback = %v", got)
	}

	// Nil config: always the flag.
	var nilc *tolConfig
	if got := nilc.forMetric("fleet", "x", 0.20); got != 0.20 {
		t.Errorf("nil config = %v", got)
	}
	if got := nilc.forExperiment("fleet", 0.20); got != 0.20 {
		t.Errorf("nil config exp = %v", got)
	}
}

// TestTolConfigErrors: unknown fields and unknown experiment IDs are
// refused — a typo must not silently gate nothing.
func TestTolConfigErrors(t *testing.T) {
	if _, err := loadTolConfig(writeTolConfig(t, `{"experimnts": {}}`)); err == nil {
		t.Fatal("misspelled field accepted")
	}
	if _, err := loadTolConfig(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Fatal("missing file accepted")
	}
	c, err := loadTolConfig(writeTolConfig(t, `{"experiments": {"ghost": {"tol": 0.5}}}`))
	if err != nil {
		t.Fatal(err)
	}
	base := benchfmt.Report{Experiments: []benchfmt.Experiment{{ID: "fleet"}}}
	if err := c.checkIDs(base); err == nil {
		t.Fatal("unknown experiment ID accepted")
	}
	ok, err := loadTolConfig(writeTolConfig(t, `{"experiments": {"fleet": {"tol": 0.5}}}`))
	if err != nil {
		t.Fatal(err)
	}
	if err := ok.checkIDs(base); err != nil {
		t.Fatalf("checkIDs on valid config: %v", err)
	}
}

// TestRelDiff pins the symmetric-relative-difference edge cases the gate
// depends on.
func TestRelDiff(t *testing.T) {
	if d := relDiff(0, 0); d != 0 {
		t.Errorf("relDiff(0,0) = %v", d)
	}
	if d := relDiff(110, 100); d < 0.0909 || d > 0.0910 {
		t.Errorf("relDiff(110,100) = %v", d)
	}
	if relDiff(100, 110) != relDiff(110, 100) {
		t.Error("relDiff must be symmetric")
	}
	if d := relDiff(5, 0); d != 1 {
		t.Errorf("relDiff(5,0) = %v, want 1", d)
	}
}
