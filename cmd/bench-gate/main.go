// Command bench-gate compares a freshly generated pie-bench JSON report
// against the committed baseline (BENCH_sim.json) and fails on regression.
// CI runs it on every PR:
//
//	pie-bench -quick -cluster -json-out fresh_bench.json
//	bench-gate -baseline BENCH_sim.json -fresh fresh_bench.json
//
// Two kinds of checks, with different physics:
//
//   - Headline metrics and per-experiment event counts derive from virtual
//     time, so same-seed same-scale runs reproduce them exactly. Any drift
//     beyond -tol means the simulation's behavior changed: either a real
//     regression, or an intentional change that must regenerate the
//     committed baseline in the same PR.
//   - events/sec is wall-clock replay speed — machine-dependent — so only
//     a regression beyond -perf-tol fails; running faster never does.
//
// Exit status: 0 clean, 1 violations, 2 usage/incomparable inputs.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"sort"

	"pie/internal/benchfmt"
)

// tolConfig is the optional -tol-config document: per-experiment and
// per-metric overrides layered over the -tol flag. Resolution order for a
// headline metric is metric override > experiment override > document
// default > -tol; event-count checks stop at the experiment level. An
// override names exactly the metrics whose physics justify extra slack, so
// loosening one noisy ratio never loosens the whole suite.
type tolConfig struct {
	Default     float64            `json:"default,omitempty"`
	Experiments map[string]expTols `json:"experiments,omitempty"`
}

type expTols struct {
	Tol     *float64           `json:"tol,omitempty"`
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

func loadTolConfig(path string) (*tolConfig, error) {
	blob, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var c tolConfig
	dec := json.NewDecoder(bytes.NewReader(blob))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&c); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &c, nil
}

// checkIDs fails on overrides that name experiments absent from the
// baseline: a typo there would silently gate nothing.
func (c *tolConfig) checkIDs(base benchfmt.Report) error {
	known := map[string]bool{}
	for _, b := range base.Experiments {
		known[b.ID] = true
	}
	ids := make([]string, 0, len(c.Experiments))
	for id := range c.Experiments {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		if !known[id] {
			return fmt.Errorf("tol-config names unknown experiment %q (baseline has none)", id)
		}
	}
	return nil
}

// forExperiment resolves the tolerance for an experiment-level check.
func (c *tolConfig) forExperiment(id string, flagTol float64) float64 {
	if c == nil {
		return flagTol
	}
	if e, ok := c.Experiments[id]; ok && e.Tol != nil {
		return *e.Tol
	}
	if c.Default > 0 {
		return c.Default
	}
	return flagTol
}

// forMetric resolves the tolerance for one headline metric.
func (c *tolConfig) forMetric(id, metric string, flagTol float64) float64 {
	if c == nil {
		return flagTol
	}
	if e, ok := c.Experiments[id]; ok {
		if t, ok := e.Metrics[metric]; ok {
			return t
		}
	}
	return c.forExperiment(id, flagTol)
}

func load(path string) (benchfmt.Report, error) {
	var r benchfmt.Report
	blob, err := os.ReadFile(path)
	if err != nil {
		return r, err
	}
	if err := json.Unmarshal(blob, &r); err != nil {
		return r, fmt.Errorf("%s: %w", path, err)
	}
	return r, nil
}

// relDiff is the symmetric relative difference, safe around zero.
func relDiff(fresh, base float64) float64 {
	if fresh == base {
		return 0
	}
	denom := math.Max(math.Abs(base), math.Abs(fresh))
	if denom == 0 {
		return 0
	}
	return math.Abs(fresh-base) / denom
}

func main() {
	basePath := flag.String("baseline", "BENCH_sim.json", "committed baseline report")
	freshPath := flag.String("fresh", "fresh_bench.json", "freshly generated report")
	tol := flag.Float64("tol", 0.20, "tolerance for deterministic metrics (headlines, event counts)")
	perfTol := flag.Float64("perf-tol", 0.20, "allowed events/sec regression (faster is always fine)")
	tolConfigPath := flag.String("tol-config", "", "optional JSON file with per-experiment/per-metric tolerance overrides")
	flag.Parse()

	base, err := load(*basePath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "bench-gate:", err)
		os.Exit(2)
	}
	fresh, err := load(*freshPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "bench-gate:", err)
		os.Exit(2)
	}
	var tols *tolConfig
	if *tolConfigPath != "" {
		tols, err = loadTolConfig(*tolConfigPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "bench-gate:", err)
			os.Exit(2)
		}
		if err := tols.checkIDs(base); err != nil {
			fmt.Fprintln(os.Stderr, "bench-gate:", err)
			os.Exit(2)
		}
	}
	if base.Seed != fresh.Seed || base.Quick != fresh.Quick {
		fmt.Fprintf(os.Stderr, "bench-gate: incomparable reports: baseline seed=%d quick=%v, fresh seed=%d quick=%v\n",
			base.Seed, base.Quick, fresh.Seed, fresh.Quick)
		os.Exit(2)
	}

	freshByID := map[string]benchfmt.Experiment{}
	for _, e := range fresh.Experiments {
		freshByID[e.ID] = e
	}

	var violations []string
	checked := 0
	for _, b := range base.Experiments {
		f, ok := freshByID[b.ID]
		if !ok {
			violations = append(violations,
				fmt.Sprintf("%s: experiment missing from fresh report", b.ID))
			continue
		}
		if et := tols.forExperiment(b.ID, *tol); relDiff(float64(f.Events), float64(b.Events)) > et {
			violations = append(violations,
				fmt.Sprintf("%s: event count drifted %.1f%% (%d -> %d, tol %.0f%%)",
					b.ID, relDiff(float64(f.Events), float64(b.Events))*100, b.Events, f.Events, et*100))
		}
		keys := make([]string, 0, len(b.Headline))
		for k := range b.Headline {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			bv := b.Headline[k]
			fv, ok := f.Headline[k]
			if !ok {
				violations = append(violations,
					fmt.Sprintf("%s/%s: headline metric missing from fresh report", b.ID, k))
				continue
			}
			checked++
			mt := tols.forMetric(b.ID, k, *tol)
			if d := relDiff(fv, bv); d > mt {
				violations = append(violations,
					fmt.Sprintf("%s/%s: drifted %.1f%% (%.4g -> %.4g, tol %.0f%%)", b.ID, k, d*100, bv, fv, mt*100))
			}
		}
	}

	// Anything present only in the fresh report means the committed
	// baseline is stale (e.g. regenerated without -cluster): those metrics
	// would silently lose regression coverage.
	baseIDs := map[string]benchfmt.Experiment{}
	for _, b := range base.Experiments {
		baseIDs[b.ID] = b
	}
	for _, f := range fresh.Experiments {
		b, ok := baseIDs[f.ID]
		if !ok {
			violations = append(violations, fmt.Sprintf(
				"%s: experiment missing from baseline (stale BENCH_sim.json — regenerate it)", f.ID))
			continue
		}
		keys := make([]string, 0, len(f.Headline))
		for k := range f.Headline {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			if _, ok := b.Headline[k]; !ok {
				violations = append(violations, fmt.Sprintf(
					"%s/%s: headline metric missing from baseline (stale BENCH_sim.json)", f.ID, k))
			}
		}
	}

	// Replay speed: regression-only, whole-suite, and only when the two
	// reports come from the same machine class — wall-clock comparisons
	// across different core counts measure the hardware, not the code.
	if base.GoMaxProcs != fresh.GoMaxProcs {
		fmt.Printf("bench-gate: gomaxprocs differs (baseline %d, fresh %d); events/sec check is advisory only\n",
			base.GoMaxProcs, fresh.GoMaxProcs)
	} else if base.EventsPerSec > 0 && fresh.EventsPerSec < base.EventsPerSec*(1-*perfTol) {
		violations = append(violations, fmt.Sprintf(
			"suite events/sec regressed %.1f%% (%.0f -> %.0f)",
			(1-fresh.EventsPerSec/base.EventsPerSec)*100, base.EventsPerSec, fresh.EventsPerSec))
	}

	writeStepSummary(base, fresh, freshByID, violations)

	fmt.Printf("bench-gate: %d experiments, %d headline metrics checked (tol %.0f%%, perf-tol %.0f%%)\n",
		len(base.Experiments), checked, *tol*100, *perfTol*100)
	fmt.Printf("bench-gate: suite events/sec baseline %.0f, fresh %.0f (%+.1f%%)\n",
		base.EventsPerSec, fresh.EventsPerSec,
		(fresh.EventsPerSec/base.EventsPerSec-1)*100)
	if len(violations) > 0 {
		fmt.Println("bench-gate: FAIL")
		for _, v := range violations {
			fmt.Println("  -", v)
		}
		fmt.Println("(intentional behavior changes must regenerate BENCH_sim.json in the same PR:" +
			" GOMAXPROCS=1 go run ./cmd/pie-bench -quick -cluster -offload -coldstart -faults -slo -pd -shard -fleet -json-out BENCH_sim.json)")
		os.Exit(1)
	}
	fmt.Println("bench-gate: OK")
}

// pct renders a signed relative change, tolerating a zero baseline.
func pct(fresh, base float64) string {
	if base == 0 {
		if fresh == 0 {
			return "0.0%"
		}
		return "new"
	}
	return fmt.Sprintf("%+.1f%%", (fresh/base-1)*100)
}

// writeStepSummary appends a per-experiment baseline-vs-fresh delta table
// to the GitHub Actions step summary (when $GITHUB_STEP_SUMMARY is set),
// so a reviewer can see exactly which metrics moved without reading the
// job log. Purely cosmetic: write failures warn but never change the
// gate's verdict.
func writeStepSummary(base, fresh benchfmt.Report, freshByID map[string]benchfmt.Experiment, violations []string) {
	path := os.Getenv("GITHUB_STEP_SUMMARY")
	if path == "" {
		return
	}
	f, err := os.OpenFile(path, os.O_APPEND|os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		fmt.Fprintln(os.Stderr, "bench-gate: step summary:", err)
		return
	}
	defer f.Close()

	verdict := "OK"
	if len(violations) > 0 {
		verdict = fmt.Sprintf("FAIL (%d violations)", len(violations))
	}
	fmt.Fprintf(f, "### bench-gate: %s\n\n", verdict)
	fmt.Fprintln(f, "| experiment | metric | baseline | fresh | delta |")
	fmt.Fprintln(f, "|---|---|---:|---:|---:|")
	for _, b := range base.Experiments {
		fr, ok := freshByID[b.ID]
		if !ok {
			fmt.Fprintf(f, "| %s | — | — | — | missing from fresh |\n", b.ID)
			continue
		}
		fmt.Fprintf(f, "| %s | events | %d | %d | %s |\n",
			b.ID, b.Events, fr.Events, pct(float64(fr.Events), float64(b.Events)))
		fmt.Fprintf(f, "| %s | events/sec | %.0f | %.0f | %s |\n",
			b.ID, b.EventsPerSec, fr.EventsPerSec, pct(fr.EventsPerSec, b.EventsPerSec))
		keys := make([]string, 0, len(b.Headline))
		for k := range b.Headline {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			fv, ok := fr.Headline[k]
			if !ok {
				fmt.Fprintf(f, "| %s | %s | %.4g | — | missing from fresh |\n", b.ID, k, b.Headline[k])
				continue
			}
			fmt.Fprintf(f, "| %s | %s | %.4g | %.4g | %s |\n", b.ID, k, b.Headline[k], fv, pct(fv, b.Headline[k]))
		}
	}
	fmt.Fprintf(f, "\nSuite events/sec: baseline %.0f, fresh %.0f (%s).\n",
		base.EventsPerSec, fresh.EventsPerSec, pct(fresh.EventsPerSec, base.EventsPerSec))
	if len(violations) > 0 {
		fmt.Fprintln(f, "\nViolations:")
		for _, v := range violations {
			fmt.Fprintf(f, "- %s\n", v)
		}
	}
}
