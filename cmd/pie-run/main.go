// Command pie-run launches a named inferlet on a fresh engine and prints
// its messages and logs — the quickest way to poke at any Table 2 program.
//
// Programs are versioned artifacts: launch by bare name (latest version)
// or pin one with name@version. -list prints the registry with manifest
// details (version, required models/traits, binary size, limits).
//
// Usage:
//
//	pie-run text_completion '{"prompt":"Hello, ","max_tokens":12}'
//	pie-run text_completion@1.0.0 '{"prompt":"Hi"}'
//	pie-run -mode timing -list
//	pie-run -deadline 2s -tag smoke ebnf '{"max_tokens":40}'
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"pie"
	"pie/apps"
)

func main() {
	mode := flag.String("mode", "full", "execution mode: full (real tensor math) or timing")
	seed := flag.Uint64("seed", 42, "deterministic seed")
	list := flag.Bool("list", false, "list registered programs with manifest details and exit")
	priority := flag.Int("priority", 0, "default batch-scheduler priority for the instance's queues")
	deadline := flag.Duration("deadline", 0, "abort the inferlet after this much virtual time (0: none)")
	tag := flag.String("tag", "", "opaque client tag carried on the launch")
	flag.Parse()

	cfg := pie.Config{Seed: *seed}
	if *mode == "timing" {
		cfg.Mode = pie.ModeTiming
	}
	e := pie.New(cfg)
	e.MustRegister(apps.All()...)
	e.RegisterTool("search.api", 40*time.Millisecond, func(string) string { return "search results" })
	e.RegisterTool("code.exec", 80*time.Millisecond, func(string) string { return "exit 0" })
	e.RegisterTool("fn.api", 30*time.Millisecond, func(string) string { return "ok" })

	if *list {
		fmt.Printf("%-24s %-10s %8s  %-28s %s\n", "PROGRAM", "VERSION", "BINARY", "REQUIRES", "LIMITS")
		for _, p := range e.Programs() {
			version := p.Version
			if p.Latest {
				version += "*"
			}
			var req []string
			for _, m := range p.Manifest.Models {
				req = append(req, "model:"+string(m))
			}
			for _, t := range p.Manifest.Traits {
				req = append(req, string(t))
			}
			requires := strings.Join(req, ",")
			if requires == "" {
				requires = "-"
			}
			var lim []string
			if l := p.Manifest.Limits; l.MaxQueues > 0 {
				lim = append(lim, fmt.Sprintf("queues<=%d", l.MaxQueues))
			}
			if l := p.Manifest.Limits; l.MaxKvPages > 0 {
				lim = append(lim, fmt.Sprintf("pages<=%d", l.MaxKvPages))
			}
			if l := p.Manifest.Limits; l.Deadline > 0 {
				lim = append(lim, fmt.Sprintf("deadline<=%v", l.Deadline))
			}
			limits := strings.Join(lim, ",")
			if limits == "" {
				limits = "-"
			}
			fmt.Printf("%-24s %-10s %7dK  %-28s %s\n",
				p.Name, version, p.BinarySize>>10, requires, limits)
		}
		return
	}
	if flag.NArg() < 1 {
		fmt.Fprintln(os.Stderr, "usage: pie-run [-mode full|timing] [-deadline d] [-tag t] <program[@version]> [json-params]")
		os.Exit(2)
	}
	spec := pie.LaunchSpec{
		Program:   flag.Arg(0),
		Priority:  *priority,
		Deadline:  *deadline,
		ClientTag: *tag,
	}
	if flag.NArg() > 1 {
		spec.Args = []string{flag.Arg(1)}
	}

	err := e.RunClient(func() {
		h, err := e.Launch(spec)
		if err != nil {
			fmt.Fprintf(os.Stderr, "launch: %v\n", err)
			return
		}
		runErr := h.Wait()
		for {
			msg, ok := h.TryRecv()
			if !ok {
				break
			}
			fmt.Printf("message: %s\n", msg)
		}
		for _, line := range h.Logs() {
			fmt.Printf("log: %s\n", line)
		}
		name, version := h.Program()
		cc, ic, tok := h.Stats()
		fmt.Printf("program: %s@%s  virtual time: %v  control calls: %d  inference calls: %d  output tokens: %d\n",
			name, version, e.Now(), cc, ic, tok)
		if runErr != nil {
			fmt.Fprintf(os.Stderr, "inferlet error: %v\n", runErr)
		}
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "run: %v\n", err)
		os.Exit(1)
	}
}
