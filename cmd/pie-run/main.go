// Command pie-run launches a named inferlet on a fresh engine and prints
// its messages and logs — the quickest way to poke at any Table 2 program.
//
// Usage:
//
//	pie-run text_completion '{"prompt":"Hello, ","max_tokens":12}'
//	pie-run -mode timing -list
//	pie-run ebnf '{"max_tokens":40}'
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"time"

	"pie"
	"pie/apps"
)

func main() {
	mode := flag.String("mode", "full", "execution mode: full (real tensor math) or timing")
	seed := flag.Uint64("seed", 42, "deterministic seed")
	list := flag.Bool("list", false, "list registered programs and exit")
	flag.Parse()

	cfg := pie.Config{Seed: *seed}
	if *mode == "timing" {
		cfg.Mode = pie.ModeTiming
	}
	e := pie.New(cfg)
	e.MustRegister(apps.All()...)
	e.RegisterTool("search.api", 40*time.Millisecond, func(string) string { return "search results" })
	e.RegisterTool("code.exec", 80*time.Millisecond, func(string) string { return "exit 0" })
	e.RegisterTool("fn.api", 30*time.Millisecond, func(string) string { return "ok" })

	if *list {
		var names []string
		for _, p := range apps.All() {
			names = append(names, p.Name)
		}
		sort.Strings(names)
		for _, n := range names {
			fmt.Println(n)
		}
		return
	}
	if flag.NArg() < 1 {
		fmt.Fprintln(os.Stderr, "usage: pie-run [-mode full|timing] <program> [json-params]")
		os.Exit(2)
	}
	program := flag.Arg(0)
	var args []string
	if flag.NArg() > 1 {
		args = []string{flag.Arg(1)}
	}

	err := e.RunClient(func() {
		h, err := e.Launch(program, args...)
		if err != nil {
			fmt.Fprintf(os.Stderr, "launch: %v\n", err)
			return
		}
		runErr := h.Wait()
		for {
			msg, ok := h.TryRecv()
			if !ok {
				break
			}
			fmt.Printf("message: %s\n", msg)
		}
		for _, line := range h.Logs() {
			fmt.Printf("log: %s\n", line)
		}
		cc, ic, tok := h.Stats()
		fmt.Printf("virtual time: %v  control calls: %d  inference calls: %d  output tokens: %d\n",
			e.Now(), cc, ic, tok)
		if runErr != nil {
			fmt.Fprintf(os.Stderr, "inferlet error: %v\n", runErr)
		}
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "run: %v\n", err)
		os.Exit(1)
	}
}
