package pie_test

import (
	"encoding/json"
	"errors"
	"testing"
	"time"

	"pie"
	"pie/api"
	"pie/apps"
)

// abortOutcome is the canonical result document for the abort determinism
// tests: everything a same-seed replay must reproduce byte-identically.
type abortOutcome struct {
	AbortedAt    string
	WaitErr      string
	PagesInUse   int
	EmbedsInUse  int
	Launches     int
	Aborts       int
	Terminations int
	OutputTokens int
	FinalTime    string
}

// runAbortScenario launches a long decode, aborts it mid-generation at a
// fixed virtual instant, and snapshots the engine afterward.
func runAbortScenario(t *testing.T, seed uint64, abortDelay time.Duration) abortOutcome {
	t.Helper()
	e := pie.New(pie.Config{Seed: seed, Mode: pie.ModeTiming})
	e.MustRegister(apps.All()...)
	var out abortOutcome
	err := e.RunClient(func() {
		h, err := e.Launch(pie.Spec("text_completion",
			`{"prompt":"abort probe","max_tokens":4096,"first_token_ack":true}`))
		if err != nil {
			t.Errorf("launch: %v", err)
			return
		}
		// First token accepted: the decode loop is live and holds pages,
		// embeds, and in-flight forward calls.
		if msg, err := h.Recv().Get(); err != nil || msg != "first-token" {
			t.Errorf("first token ack: %q, %v", msg, err)
			return
		}
		e.Sleep(abortDelay) // land the abort mid-decode
		if !h.Abort() {
			t.Error("Abort reported no-op on a live inferlet")
		}
		out.AbortedAt = e.Now().String()
		if h.Abort() {
			t.Error("second Abort was not a no-op")
		}
		waitErr := h.Wait()
		if !errors.Is(waitErr, api.ErrAborted) {
			t.Errorf("Wait after abort = %v, want ErrAborted", waitErr)
		}
		out.WaitErr = waitErr.Error()
		_, _, out.OutputTokens = h.Stats()
		if out.OutputTokens == 0 {
			t.Error("abort landed before any decode progress; move it later")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	out.PagesInUse, _ = e.PoolStats("llama-1b")
	out.EmbedsInUse, _ = e.Controller().EmbedPoolStats("llama-1b")
	s := e.Stats()
	out.Launches = s.Launches
	out.Aborts = s.Aborts
	out.Terminations = s.Terminations
	out.FinalTime = e.Now().String()
	return out
}

// TestAbortMidDecodeFreesEverything: Abort() during a decode loop returns
// the pools to their pre-launch state — no leaked pages or embedding
// slots, in-flight calls retired — and the replay is byte-identical under
// the same seed.
func TestAbortMidDecodeFreesEverything(t *testing.T) {
	out := runAbortScenario(t, 42, 5*time.Millisecond)
	if out.PagesInUse != 0 {
		t.Fatalf("%d KV pages still allocated after abort", out.PagesInUse)
	}
	if out.EmbedsInUse != 0 {
		t.Fatalf("%d embedding slots still allocated after abort", out.EmbedsInUse)
	}
	if out.Aborts != 1 || out.Terminations != 0 {
		t.Fatalf("aborts=%d terminations=%d, want 1/0 (abort is not an FCFS kill)",
			out.Aborts, out.Terminations)
	}

	// Byte-identical same-seed replay: the full outcome document.
	again := runAbortScenario(t, 42, 5*time.Millisecond)
	a, _ := json.Marshal(out)
	b, _ := json.Marshal(again)
	if string(a) != string(b) {
		t.Fatalf("same-seed abort replay diverged:\n%s\n%s", a, b)
	}

	// A later abort must shift the document (otherwise the byte-compare
	// above proves nothing about the scenario).
	other := runAbortScenario(t, 42, 12*time.Millisecond)
	c, _ := json.Marshal(other)
	if string(a) == string(c) {
		t.Fatal("a different abort instant reproduced the identical outcome document")
	}
}

// TestLaunchDeadlineAborts: a LaunchSpec deadline reclaims a runaway
// inferlet with ErrDeadlineExceeded, and a manifest deadline tightens the
// same way.
func TestLaunchDeadlineAborts(t *testing.T) {
	e := pie.New(pie.Config{Seed: 7, Mode: pie.ModeTiming})
	e.MustRegister(apps.All()...)
	err := e.RunClient(func() {
		h, err := e.Launch(pie.LaunchSpec{
			Program:  "text_completion",
			Args:     []string{`{"prompt":"runaway","max_tokens":4096}`},
			Deadline: 40 * time.Millisecond,
		})
		if err != nil {
			t.Errorf("launch: %v", err)
			return
		}
		if err := h.Wait(); !errors.Is(err, api.ErrDeadlineExceeded) {
			t.Errorf("Wait = %v, want ErrDeadlineExceeded", err)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if n, _ := e.PoolStats("llama-1b"); n != 0 {
		t.Fatalf("%d pages leaked after deadline abort", n)
	}
	// A deadline roomier than the run never fires (fresh engine: a
	// finished virtual clock cannot be restarted).
	e = pie.New(pie.Config{Seed: 7, Mode: pie.ModeTiming})
	e.MustRegister(apps.All()...)
	err = e.RunClient(func() {
		h, err := e.Launch(pie.LaunchSpec{
			Program:  "text_completion",
			Args:     []string{`{"prompt":"quick","max_tokens":2}`},
			Deadline: time.Hour,
		})
		if err != nil {
			t.Errorf("launch: %v", err)
			return
		}
		if err := h.Wait(); err != nil {
			t.Errorf("Wait under roomy deadline: %v", err)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestManifestLimitsEnforced: manifest resource limits surface as typed
// ErrLimitExceeded from the control layer, and manifest validation
// rejects unsatisfiable deployments at register and launch time.
func TestManifestLimitsEnforced(t *testing.T) {
	e := pie.New(pie.Config{Seed: 7, Mode: pie.ModeTiming})
	var pageErr, queueErr, importErr error
	e.MustRegister(pie.Program{
		Name:       "limited",
		BinarySize: 4 << 10,
		Manifest: pie.Manifest{
			Version: "2.0.0",
			Limits:  pie.Limits{MaxKvPages: 2, MaxQueues: 1},
		},
		Run: func(s pie.Session) error {
			q, err := s.Open("llama-1b")
			if err != nil {
				return err
			}
			al, err := q.Alloc()
			if err != nil {
				return err
			}
			pages, err := al.Pages(2)
			if err != nil {
				return err
			}
			_, pageErr = al.Pages(1) // third page: over the manifest limit
			_, queueErr = s.Open("llama-1b")
			// Imports map pages into the address space too: the cap must
			// bound them the same way.
			if err := al.Export("limited:kv", pages); err != nil {
				return err
			}
			_, importErr = al.Import("limited:kv")
			return nil
		},
	})
	err := e.RunClient(func() {
		if _, err := e.LaunchAndWait(pie.Spec("limited")); err != nil {
			t.Errorf("run: %v", err)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if !errors.Is(pageErr, api.ErrLimitExceeded) {
		t.Fatalf("page alloc over limit = %v, want ErrLimitExceeded", pageErr)
	}
	if !errors.Is(queueErr, api.ErrLimitExceeded) {
		t.Fatalf("second queue over limit = %v, want ErrLimitExceeded", queueErr)
	}
	if !errors.Is(importErr, api.ErrLimitExceeded) {
		t.Fatalf("import over limit = %v, want ErrLimitExceeded", importErr)
	}

	// Unsatisfiable manifests: rejected at register time, typed. llama-1b
	// is text-only, so pinning input_image onto it cannot be served;
	// neither can a model absent from the catalog.
	bad := pie.Program{
		Name: "needs-image-on-1b", BinarySize: 1 << 10,
		Manifest: pie.Manifest{
			Models: []api.ModelID{"llama-1b"},
			Traits: []api.Trait{api.TraitInputImage},
		},
		Run: func(pie.Session) error { return nil },
	}
	if err := e.Register(bad); !errors.Is(err, pie.ErrUnsatisfiedManifest) {
		t.Fatalf("register unsatisfiable manifest = %v, want ErrUnsatisfiedManifest", err)
	}
	ghost := pie.Program{
		Name: "needs-ghost-model", BinarySize: 1 << 10,
		Manifest: pie.Manifest{Models: []api.ModelID{"gpt-99"}},
		Run:      func(pie.Session) error { return nil },
	}
	if err := e.Register(ghost); !errors.Is(err, pie.ErrUnsatisfiedManifest) {
		t.Fatalf("register ghost-model manifest = %v, want ErrUnsatisfiedManifest", err)
	}

	// Unknown program references are typed at launch (fresh engine: the
	// first one's clock already ran to completion).
	e2 := pie.New(pie.Config{Seed: 7, Mode: pie.ModeTiming})
	e2.MustRegister(apps.All()...)
	err = e2.RunClient(func() {
		if _, err := e2.Launch(pie.Spec("text_completion@9.9.9")); !errors.Is(err, pie.ErrNoSuchProgram) {
			t.Errorf("launch unknown version = %v, want ErrNoSuchProgram", err)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}
