package pie_test

// Surface tests for the fault-tolerance API the root package re-exports:
// fault-plan construction, the handle accessors the retry layer feeds
// (Attempts, Program, ClientTag), and the engine introspection hooks the
// serving front ends and eval harness lean on.

import (
	"errors"
	"strings"
	"testing"
	"time"

	"pie"
	"pie/apps"
)

func TestFaultPlanReExports(t *testing.T) {
	plan, err := pie.ParseFaultPlan("crash:1@200ms,hang:2@300ms")
	if err != nil || len(plan.Events) != 2 {
		t.Fatalf("ParseFaultPlan = %+v, %v", plan, err)
	}
	if _, err := pie.ParseFaultPlan("explode:1@5ms"); err == nil {
		t.Fatal("malformed plan accepted")
	}
	rnd := pie.RandomFaultPlan(7, 4, 5, 100*time.Millisecond)
	if len(rnd.Events) != 5 {
		t.Fatalf("RandomFaultPlan built %d events, want 5", len(rnd.Events))
	}
	for _, ev := range rnd.Events {
		if ev.Replica == 0 {
			t.Fatal("random plan faulted replica 0")
		}
	}
}

func TestHandleAndEngineIntrospection(t *testing.T) {
	e := pie.New(pie.Config{Seed: 2, Replicas: 2, Mode: pie.ModeTiming})
	e.MustRegister(apps.All()...)
	err := e.RunClient(func() {
		spec := pie.Spec("text_completion", `{"prompt":"probe","max_tokens":2}`)
		spec.ClientTag = "client-7"
		h, lerr := e.Launch(spec)
		if lerr != nil {
			t.Errorf("launch: %v", lerr)
			return
		}
		if werr := h.Wait(); werr != nil {
			t.Errorf("wait: %v", werr)
			return
		}
		if !h.Done() {
			t.Error("Done() false after Wait")
		}
		// No faults injected: exactly one placement attempt.
		if h.Attempts() != 1 {
			t.Errorf("Attempts = %d, want 1", h.Attempts())
		}
		if name, ver := h.Program(); name != "text_completion" || ver == "" {
			t.Errorf("Program = %q@%q", name, ver)
		}
		if h.ClientTag() != "client-7" {
			t.Errorf("ClientTag = %q", h.ClientTag())
		}
		if msg, ok := h.TryRecv(); !ok || msg == "" {
			t.Errorf("TryRecv missed the completion output: %q, %v", msg, ok)
		}
		if msg, ok := h.TryRecv(); ok {
			t.Errorf("TryRecv on drained handle = %q", msg)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := len(e.ReplicaStats()); got != 2 {
		t.Fatalf("ReplicaStats len = %d, want 2", got)
	}
	if len(e.Programs()) == 0 || len(e.Models()) == 0 {
		t.Fatal("Programs/Models empty on a registered engine")
	}
	if !strings.Contains(e.String(), "replicas=2") {
		t.Fatalf("String() = %q", e.String())
	}
	if e.Cluster() == nil || e.Lifecycle() == nil || e.World() == nil {
		t.Fatal("introspection hooks returned nil")
	}
	if errors.Is(e.Cluster().LaunchFault(), pie.ErrTransientFault) {
		t.Fatal("fault stream armed without a plan")
	}
}
