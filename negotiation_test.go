package pie_test

// Capability-negotiation contract tests (API v2): opening queues on
// missing models, requesting capabilities a model lacks, the supertrait
// closure doing real work at negotiation time, queue-scoped resource
// reclamation, and use-after-Close.

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"pie"
	"pie/api"
	"pie/inferlet"
)

// runInferlet executes body as a registered inferlet on a fresh timing-mode
// engine and returns its Send output; body errors fail the test.
func runInferlet(t *testing.T, body func(s inferlet.Session) (string, error)) (string, *pie.Engine) {
	t.Helper()
	e := pie.New(pie.Config{Seed: 99, Mode: pie.ModeTiming})
	e.MustRegister(inferlet.Program{
		Name: "probe", BinarySize: 4 << 10,
		Run: func(s inferlet.Session) error {
			out, err := body(s)
			if err != nil {
				return err
			}
			s.Send(out)
			return nil
		},
	})
	var got string
	if err := e.RunClient(func() {
		h, err := e.Launch(pie.Spec("probe"))
		if err != nil {
			t.Errorf("launch: %v", err)
			return
		}
		got, _ = h.Recv().Get()
		if err := h.Wait(); err != nil {
			t.Errorf("inferlet: %v", err)
		}
	}); err != nil {
		t.Fatal(err)
	}
	return got, e
}

func TestOpenMissingModel(t *testing.T) {
	got, _ := runInferlet(t, func(s inferlet.Session) (string, error) {
		if _, err := s.Open("gpt-17"); !errors.Is(err, api.ErrNoSuchModel) {
			return "", fmt.Errorf("Open(gpt-17) = %v, want ErrNoSuchModel", err)
		}
		return "ok", nil
	})
	if got != "ok" {
		t.Fatal(got)
	}
}

func TestNegotiationRejectsMissingTrait(t *testing.T) {
	got, _ := runInferlet(t, func(s inferlet.Session) (string, error) {
		// llama-1b does not declare input_image (only llama-8b is
		// multimodal): negotiation must refuse the capability.
		q, err := s.Open("llama-1b")
		if err != nil {
			return "", err
		}
		if _, err := q.Image(); !errors.Is(err, api.ErrNoSuchTrait) {
			return "", fmt.Errorf("Image() on llama-1b = %v, want ErrNoSuchTrait", err)
		}
		// The multimodal model grants it.
		q8, err := s.Open("llama-8b")
		if err != nil {
			return "", err
		}
		if _, err := q8.Image(); err != nil {
			return "", fmt.Errorf("Image() on llama-8b: %v", err)
		}
		return "ok", nil
	})
	if got != "ok" {
		t.Fatal(got)
	}
}

// TestNegotiationWalksSupertraitClosure: every capability whose trait is
// reachable through the supertrait DAG from the model's declared traits
// must negotiate, and the whole declared surface of the standard models
// is available.
func TestNegotiationWalksSupertraitClosure(t *testing.T) {
	got, _ := runInferlet(t, func(s inferlet.Session) (string, error) {
		q, err := s.Open("llama-1b")
		if err != nil {
			return "", err
		}
		if _, err := q.Alloc(); err != nil {
			return "", fmt.Errorf("Alloc: %v", err)
		}
		if _, err := q.Forward(); err != nil {
			return "", fmt.Errorf("Forward: %v", err)
		}
		if _, err := q.Fused(); err != nil {
			return "", fmt.Errorf("Fused: %v", err)
		}
		if _, err := q.Text(); err != nil {
			return "", fmt.Errorf("Text: %v", err)
		}
		if _, err := q.Sample(); err != nil {
			return "", fmt.Errorf("Sample: %v", err)
		}
		if _, err := q.Tokenizer(); err != nil {
			return "", fmt.Errorf("Tokenizer: %v", err)
		}
		return "ok", nil
	})
	if got != "ok" {
		t.Fatal(got)
	}
}

// TestQueueCloseReclaimsResources: Close frees everything allocated or
// imported through the queue — the pool shrinks back without a single
// explicit dealloc — and afterwards both the queue and its capabilities
// are dead with ErrQueueClosed.
func TestQueueCloseReclaimsResources(t *testing.T) {
	got, e := runInferlet(t, func(s inferlet.Session) (string, error) {
		q, err := s.Open("llama-1b")
		if err != nil {
			return "", err
		}
		alloc, err := q.Alloc()
		if err != nil {
			return "", err
		}
		if _, err := alloc.Pages(7); err != nil {
			return "", err
		}
		if _, err := alloc.Embeds(3); err != nil {
			return "", err
		}
		if err := q.Close(); err != nil {
			return "", err
		}

		// The queue and every capability negotiated from it are dead.
		if err := q.Sync(); !errors.Is(err, api.ErrQueueClosed) {
			return "", fmt.Errorf("Sync after Close = %v, want ErrQueueClosed", err)
		}
		if _, err := alloc.Pages(1); !errors.Is(err, api.ErrQueueClosed) {
			return "", fmt.Errorf("Pages after Close = %v, want ErrQueueClosed", err)
		}
		if _, err := q.Alloc(); !errors.Is(err, api.ErrQueueClosed) {
			return "", fmt.Errorf("negotiation after Close = %v, want ErrQueueClosed", err)
		}
		if err := q.Close(); !errors.Is(err, api.ErrQueueClosed) {
			return "", fmt.Errorf("double Close = %v, want ErrQueueClosed", err)
		}
		return "ok", nil
	})
	if got != "ok" {
		t.Fatal(got)
	}
	if inUse, _ := e.PoolStats("llama-1b"); inUse != 0 {
		t.Fatalf("queue-scoped reclamation leaked %d pages", inUse)
	}
}

// TestFailedFreeKeepsCloseWorking: a dealloc containing a bad handle is
// all-or-nothing at the controller, so the queue's tracked handles stay
// consistent and Close still reclaims everything afterwards.
func TestFailedFreeKeepsCloseWorking(t *testing.T) {
	got, e := runInferlet(t, func(s inferlet.Session) (string, error) {
		q, err := s.Open("llama-1b")
		if err != nil {
			return "", err
		}
		alloc, err := q.Alloc()
		if err != nil {
			return "", err
		}
		pages, err := alloc.Pages(3)
		if err != nil {
			return "", err
		}
		// One stale handle poisons the batch: nothing may be freed.
		bad := append(append([]api.KvPage(nil), pages...), api.KvPage(999999))
		if err := alloc.FreePages(bad); !errors.Is(err, api.ErrBadHandle) {
			return "", fmt.Errorf("FreePages with stale handle = %v, want ErrBadHandle", err)
		}
		// Duplicates are rejected outright too.
		if err := alloc.FreePages([]api.KvPage{pages[0], pages[0]}); !errors.Is(err, api.ErrBadHandle) {
			return "", fmt.Errorf("FreePages with duplicate = %v, want ErrBadHandle", err)
		}
		// The failed calls released nothing and desynced nothing: Close
		// reclaims all three pages.
		if err := q.Close(); err != nil {
			return "", fmt.Errorf("Close after failed frees: %v", err)
		}
		return "ok", nil
	})
	if got != "ok" {
		t.Fatal(got)
	}
	if inUse, _ := e.PoolStats("llama-1b"); inUse != 0 {
		t.Fatalf("failed frees leaked %d pages", inUse)
	}
}

// TestQueueCloseSparesExports: Close drops the queue's own references but
// the export registry keeps exported pages alive for importers.
func TestQueueCloseSparesExports(t *testing.T) {
	got, e := runInferlet(t, func(s inferlet.Session) (string, error) {
		q, err := s.Open("llama-1b")
		if err != nil {
			return "", err
		}
		alloc, err := q.Alloc()
		if err != nil {
			return "", err
		}
		pages, err := alloc.Pages(2)
		if err != nil {
			return "", err
		}
		if err := alloc.Export("survivor", pages); err != nil {
			return "", err
		}
		if err := q.Close(); err != nil {
			return "", err
		}

		// A fresh queue can still import the export.
		q2, err := s.Open("llama-1b")
		if err != nil {
			return "", err
		}
		alloc2, err := q2.Alloc()
		if err != nil {
			return "", err
		}
		back, err := alloc2.Import("survivor")
		if err != nil {
			return "", err
		}
		if len(back) != 2 {
			return "", fmt.Errorf("imported %d pages, want 2", len(back))
		}
		return "ok", nil
	})
	if got != "ok" {
		t.Fatal(got)
	}
	// Registry refs (2 pages) survive; the importer's refs died with its
	// instance.
	if inUse, _ := e.PoolStats("llama-1b"); inUse != 2 {
		t.Fatalf("export registry holds %d pages, want 2", inUse)
	}
}

// TestFutureCombinatorsInSim: All/Any/Then/Map against real runtime
// futures on the virtual clock. Any must resolve at the FAST service's
// latency, not the slow one's.
func TestFutureCombinatorsInSim(t *testing.T) {
	e := pie.New(pie.Config{Seed: 5, Mode: pie.ModeTiming})
	e.RegisterTool("fast.api", 10*time.Millisecond, func(string) string { return "fast" })
	e.RegisterTool("slow.api", 80*time.Millisecond, func(string) string { return "slow" })
	e.MustRegister(inferlet.Program{
		Name: "combinators", BinarySize: 4 << 10,
		Run: func(s inferlet.Session) error {
			// Any: first completion wins, at the fast tool's latency.
			t0 := s.Now()
			winner, err := api.Any(
				s.HTTPGet("http://slow.api/a"),
				s.HTTPGet("http://fast.api/b"),
			).Get()
			if err != nil {
				return err
			}
			anyTook := s.Now() - t0
			if winner != "fast" {
				return fmt.Errorf("Any picked %q, want fast", winner)
			}
			if anyTook > 40*time.Millisecond {
				return fmt.Errorf("Any took %v; did it wait for the slow call?", anyTook)
			}

			// All: both values, argument order, total wait = slowest.
			t0 = s.Now()
			both, err := api.All(
				s.HTTPGet("http://slow.api/c"),
				s.HTTPGet("http://fast.api/d"),
			).Get()
			if err != nil {
				return err
			}
			if both[0] != "slow" || both[1] != "fast" {
				return fmt.Errorf("All = %v", both)
			}
			if took := s.Now() - t0; took < 80*time.Millisecond {
				return fmt.Errorf("All resolved in %v, before the slow call", took)
			}

			// Then + Map: lazy transforms over runtime futures.
			upper, err := api.Then(s.HTTPGet("http://fast.api/e"), func(v string) (string, error) {
				return v + "!", nil
			}).Get()
			if err != nil {
				return err
			}
			if upper != "fast!" {
				return fmt.Errorf("Then = %q", upper)
			}
			lens, err := api.Map([]api.Future[string]{
				s.HTTPGet("http://fast.api/f"),
				s.HTTPGet("http://slow.api/g"),
			}, func(v string) (int, error) { return len(v), nil }).Get()
			if err != nil {
				return err
			}
			if lens[0] != 4 || lens[1] != 4 {
				return fmt.Errorf("Map = %v", lens)
			}
			s.Send("ok")
			return nil
		},
	})
	if err := e.RunClient(func() {
		h, err := e.Launch(pie.Spec("combinators"))
		if err != nil {
			t.Errorf("launch: %v", err)
			return
		}
		if msg, _ := h.Recv().Get(); msg != "ok" {
			t.Errorf("got %q", msg)
		}
		h.Wait()
	}); err != nil {
		t.Fatal(err)
	}
}

// TestAnyAcrossLayers: Any mixes an inference-layer future with a
// control-layer I/O future — the composition the flat API could not
// express without hand-rolled polling.
func TestAnyAcrossLayers(t *testing.T) {
	e := pie.New(pie.Config{Seed: 6, Mode: pie.ModeTiming})
	e.RegisterTool("glacial.api", 5*time.Second, func(string) string { return "late" })
	e.MustRegister(inferlet.Program{
		Name: "mixed", BinarySize: 4 << 10,
		Run: func(s inferlet.Session) error {
			q, err := s.Open(s.AvailableModels()[0].ID)
			if err != nil {
				return err
			}
			slow := s.HTTPGet("http://glacial.api/x")
			barrier, err := q.Barrier()
			if err != nil {
				return err
			}
			// The empty queue's barrier resolves immediately; the glacial
			// tool call must not block the race.
			done := api.Any(
				api.Then(barrier, func(struct{}) (string, error) { return "queue", nil }),
				api.Then(slow, func(string) (string, error) { return "tool", nil }),
			)
			first, err := done.Get()
			if err != nil {
				return err
			}
			if first != "queue" {
				return fmt.Errorf("Any = %q, want queue", first)
			}
			if s.Now() > time.Second {
				return fmt.Errorf("Any waited for the glacial tool (now=%v)", s.Now())
			}
			s.Send("ok")
			return nil
		},
	})
	if err := e.RunClient(func() {
		h, err := e.Launch(pie.Spec("mixed"))
		if err != nil {
			t.Errorf("launch: %v", err)
			return
		}
		if msg, _ := h.Recv().Get(); msg != "ok" {
			t.Errorf("got %q", msg)
		}
		h.Wait()
	}); err != nil {
		t.Fatal(err)
	}
}
